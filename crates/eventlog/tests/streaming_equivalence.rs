//! The streaming store route must be indistinguishable from the in-memory
//! route — bit-identical logs (interner order, class ids, traces), equal
//! index postings and equal co-occurrence sketches — for every batch
//! size, read-chunk size and worker count, serially and under `rayon`.
//!
//! This is the oracle contract of the tentpole: `ingest_to_store` →
//! `load_log` must reproduce exactly what `parse_str` builds in memory,
//! and `build_index` (spliced batch by batch, log never materialized)
//! must equal `LogIndex::build` on that log.

mod common;

use common::{assert_logs_identical, build_log, xes_log_spec, xes_log_spec_large};
use gecco_eventlog::{
    ingest_to_store, set_parallel, xes, ClassCoOccurrence, EventLog, IngestOptions, LogBuilder,
    LogIndex, TraceStore,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique store directory under the cargo-managed tmp dir.
fn store_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("stream-eq-{tag}-{}-{n}", std::process::id()))
}

/// Streams `doc` through an on-disk store and loads it back.
fn via_store(doc: &str, tag: &str, options: &IngestOptions) -> (EventLog, LogIndex) {
    let dir = store_dir(tag);
    ingest_to_store(doc.as_bytes(), &dir, options).unwrap();
    // Reopen from disk so the assertion covers the persisted form, not
    // the writer's in-process state.
    let store = TraceStore::open(&dir).unwrap();
    let log = store.load_log().unwrap();
    let index = store.build_index().unwrap();
    std::fs::remove_dir_all(&dir).ok();
    (log, index)
}

/// Asserts the store route reproduces the in-memory route bit for bit.
fn assert_routes_identical(doc: &str, tag: &str, options: &IngestOptions) {
    let expect = xes::parse_str(doc).unwrap();
    let expect_index = LogIndex::build(&expect);
    let (log, index) = via_store(doc, tag, options);
    assert_logs_identical(&expect, &log);
    assert_eq!(expect_index, index, "index postings diverge");
    assert_eq!(
        LogIndex::build_from_traces(log.num_classes(), log.traces()),
        index,
        "build_from_traces diverges from the spliced index"
    );
    assert_eq!(
        ClassCoOccurrence::build(&expect_index),
        ClassCoOccurrence::build(&index),
        "co-occurrence sketches diverge"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn store_route_matches_in_memory(case in (xes_log_spec(), 1usize..20)) {
        let (spec, batch) = case;
        let doc = xes::write_string(&build_log(&spec));
        let options = IngestOptions { batch_traces: batch, ..IngestOptions::default() };
        assert_routes_identical(&doc, "prop", &options);
    }

    #[test]
    fn store_route_matches_in_memory_with_tiny_windows(spec in xes_log_spec_large()) {
        let doc = xes::write_string(&build_log(&spec));
        // A 7-byte read chunk forces the incremental scanner through its
        // refill/rescan path on essentially every construct.
        let options = IngestOptions { batch_traces: 3, read_chunk: 7, ..IngestOptions::default() };
        assert_routes_identical(&doc, "tiny", &options);
    }
}

/// A deterministic many-trace log, far past every fan-out threshold.
fn big_log() -> EventLog {
    let mut b = LogBuilder::new();
    for i in 0..600 {
        let mut tb = b.trace(&format!("case-{i}"));
        for j in 0..(1 + i % 5) {
            let class = format!("step-{}", (i + j) % 17);
            tb = tb
                .event_with(&class, |e| {
                    e.str("org:role", if i % 3 == 0 { "clerk" } else { "manager" })
                        .int("cost", (i * 31 + j) as i64)
                        .timestamp("time:timestamp", 1_600_000_000_000 + (i * 60_000 + j) as i64);
                })
                .unwrap();
        }
        tb.done();
    }
    b.build()
}

/// Serializes tests that flip the process-wide parallelism toggle.
static TOGGLE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Every combination of batch size, read-chunk size and worker count on
/// the same 600-trace document must land on the same bytes.
#[test]
fn batch_and_worker_grid_is_bit_identical() {
    let doc = xes::write_string(&big_log());
    let expect = xes::parse_str(&doc).unwrap();
    let expect_index = LogIndex::build(&expect);
    let _guard = TOGGLE_LOCK.lock().unwrap();
    for threads in ["1", "4"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        for parallel in [false, true] {
            set_parallel(parallel);
            for batch_traces in [1, 16, 64, 1000] {
                for read_chunk in [64, 64 * 1024] {
                    let options =
                        IngestOptions { batch_traces, read_chunk, ..IngestOptions::default() };
                    let (log, index) = via_store(&doc, "grid", &options);
                    assert_logs_identical(&expect, &log);
                    assert_eq!(expect_index, index, "batch {batch_traces} chunk {read_chunk}");
                }
            }
        }
    }
    set_parallel(true);
    std::env::set_var("RAYON_NUM_THREADS", "4");
}

/// Log-level attributes interleaved between traces force batch flushes at
/// every boundary; interning order must survive them on the store route.
#[test]
fn interleaved_log_segments_survive_the_store() {
    let mut doc = String::from("<log>\n");
    for i in 0..120 {
        if i % 7 == 0 {
            doc.push_str(&format!("<string key=\"marker-{i}\" value=\"m{i}\"/>\n"));
        }
        doc.push_str(&format!(
            "<trace><string key=\"concept:name\" value=\"case-{i}\"/>\
             <event><string key=\"concept:name\" value=\"step-{}\"/></event></trace>\n",
            i % 9
        ));
    }
    doc.push_str("</log>");
    let options = IngestOptions { batch_traces: 5, ..IngestOptions::default() };
    assert_routes_identical(&doc, "interleaved", &options);
}

/// Errors on the streaming route carry document-absolute line numbers,
/// same as the in-memory route.
#[test]
fn streaming_errors_match_in_memory_errors() {
    let doc = "<log>\n<trace>\n<event>\n<string key=\"k\" value=\"v\"\n</event>\n</trace>\n</log>";
    let expect = xes::parse_str(doc).unwrap_err().to_string();
    let dir = store_dir("err");
    let options = IngestOptions { read_chunk: 5, ..IngestOptions::default() };
    let got = ingest_to_store(doc.as_bytes(), &dir, &options).unwrap_err().to_string();
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(expect, got);
}
