//! Temporary repro: parallel ingest must return (not hang) on a parse
//! error that occurs early in a large document.

use gecco_eventlog::{set_parallel, IngestOptions};

#[test]
fn parallel_ingest_error_terminates() {
    set_parallel(true);
    let mut doc = String::from("<log>\n");
    // Malformed trace early (bad attribute -> stage-two parse error).
    doc.push_str("<trace><event><string key=\"concept:name\"/></event></trace>\n");
    for i in 0..200_000 {
        doc.push_str(&format!(
            "<trace><string key=\"concept:name\" value=\"c{i}\"/><event><string key=\"concept:name\" value=\"a\"/></event></trace>\n"
        ));
    }
    doc.push_str("</log>");
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let res = gecco_eventlog::parse_reader(
            doc.as_bytes(),
            &IngestOptions { batch_traces: 1, ..IngestOptions::default() },
        );
        tx.send(res.is_err()).unwrap();
    });
    match rx.recv_timeout(std::time::Duration::from_secs(30)) {
        Ok(was_err) => assert!(was_err, "expected a parse error"),
        Err(_) => panic!("parallel ingest deadlocked on an early parse error"),
    }
}
