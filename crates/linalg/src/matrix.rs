//! Dense row-major matrices.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `rows × cols` matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from a nested array (rows of equal length).
    pub fn from_rows(rows: &[&[f64]]) -> Matrix {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut m = Matrix::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged rows");
            m.data[i * c..(i + 1) * c].copy_from_slice(row);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// A row as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix-matrix product.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Whether the matrix is symmetric within `eps`.
    pub fn is_symmetric(&self, eps: f64) -> bool {
        self.rows == self.cols
            && (0..self.rows).all(|i| (0..i).all(|j| (self[(i, j)] - self[(j, i)]).abs() <= eps))
    }

    /// Frobenius norm of the off-diagonal part.
    pub fn off_diagonal_norm(&self) -> f64 {
        let mut s = 0.0;
        for i in 0..self.rows {
            for j in 0..self.cols {
                if i != j {
                    s += self[(i, j)] * self[(i, j)];
                }
            }
        }
        s.sqrt()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            writeln!(f, "  {:?}", self.row(i))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(Matrix::identity(2)[(1, 1)], 1.0);
        assert_eq!(Matrix::identity(2)[(0, 1)], 0.0);
    }

    #[test]
    fn matmul_identity() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.matmul(&Matrix::identity(2)), m);
        let sq = m.matmul(&m);
        assert_eq!(sq[(0, 0)], 7.0);
        assert_eq!(sq[(1, 1)], 22.0);
    }

    #[test]
    fn transpose_and_symmetry() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 5.0]]);
        assert!(m.is_symmetric(0.0));
        assert_eq!(m.transpose(), m);
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!(!a.is_symmetric(1e-12));
        assert_eq!(a.transpose()[(0, 1)], 3.0);
    }

    #[test]
    fn off_diagonal_norm() {
        let m = Matrix::from_rows(&[&[1.0, 3.0], &[4.0, 2.0]]);
        assert!((m.off_diagonal_norm() - 5.0).abs() < 1e-12);
        assert_eq!(Matrix::identity(3).off_diagonal_norm(), 0.0);
    }
}
