//! Cyclic Jacobi eigensolver for symmetric matrices.
//!
//! Iteratively annihilates the largest off-diagonal entries with Givens
//! rotations until the off-diagonal norm vanishes. Unconditionally stable
//! and exact enough (`~1e-12`) for spectral partitioning of DFGs.

use crate::matrix::Matrix;

/// Eigendecomposition of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct Eigen {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Eigenvectors as matrix columns, aligned with `values`.
    pub vectors: Matrix,
}

/// Computes all eigenvalues/vectors of symmetric `a`.
///
/// # Panics
/// Panics if `a` is not square/symmetric.
pub fn eigen_symmetric(a: &Matrix) -> Eigen {
    assert!(a.is_symmetric(1e-9), "Jacobi requires a symmetric matrix");
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    let max_sweeps = 100;
    for _ in 0..max_sweeps {
        if m.off_diagonal_norm() < 1e-12 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-15 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                // Stable tangent of the rotation angle.
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation J(p,q,θ)ᵀ · M · J(p,q,θ).
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    // Collect and sort ascending by eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    order.sort_by(|&i, &j| diag[i].total_cmp(&diag[j]));
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_col)] = v[(r, old_col)];
        }
    }
    Eigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_decomposition(a: &Matrix, eig: &Eigen) {
        let n = a.rows();
        // A·v_i == λ_i·v_i for every eigenpair.
        for i in 0..n {
            for r in 0..n {
                let av: f64 = (0..n).map(|c| a[(r, c)] * eig.vectors[(c, i)]).sum();
                let lv = eig.values[i] * eig.vectors[(r, i)];
                assert!((av - lv).abs() < 1e-8, "eigenpair {i} violated: {av} vs {lv}");
            }
        }
    }

    #[test]
    fn diagonal_matrix() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 1.0]]);
        let eig = eigen_symmetric(&a);
        assert!((eig.values[0] - 1.0).abs() < 1e-12);
        assert!((eig.values[1] - 3.0).abs() < 1e-12);
        check_decomposition(&a, &eig);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let eig = eigen_symmetric(&a);
        assert!((eig.values[0] - 1.0).abs() < 1e-10);
        assert!((eig.values[1] - 3.0).abs() < 1e-10);
        check_decomposition(&a, &eig);
    }

    #[test]
    fn graph_laplacian_path() {
        // Path graph laplacian of 3 nodes: eigenvalues 0, 1, 3.
        let a = Matrix::from_rows(&[&[1.0, -1.0, 0.0], &[-1.0, 2.0, -1.0], &[0.0, -1.0, 1.0]]);
        let eig = eigen_symmetric(&a);
        assert!(eig.values[0].abs() < 1e-10);
        assert!((eig.values[1] - 1.0).abs() < 1e-10);
        assert!((eig.values[2] - 3.0).abs() < 1e-10);
        check_decomposition(&a, &eig);
    }

    #[test]
    fn disconnected_graph_has_multiple_zero_eigenvalues() {
        // Two disconnected edges: laplacian has two zero eigenvalues —
        // exactly the structure spectral partitioning exploits.
        let a = Matrix::from_rows(&[
            &[1.0, -1.0, 0.0, 0.0],
            &[-1.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, -1.0],
            &[0.0, 0.0, -1.0, 1.0],
        ]);
        let eig = eigen_symmetric(&a);
        assert!(eig.values[0].abs() < 1e-10);
        assert!(eig.values[1].abs() < 1e-10);
        assert!(eig.values[2] > 0.5);
        check_decomposition(&a, &eig);
    }

    #[test]
    fn orthonormal_eigenvectors() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.2], &[0.5, 0.2, 1.0]]);
        let eig = eigen_symmetric(&a);
        let vt_v = eig.vectors.transpose().matmul(&eig.vectors);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((vt_v[(i, j)] - expect).abs() < 1e-9);
            }
        }
        check_decomposition(&a, &eig);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn rejects_asymmetric() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        eigen_symmetric(&a);
    }
}
