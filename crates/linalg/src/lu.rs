//! Dense LU factorization with partial pivoting.
//!
//! Factors a square matrix as `P·A = L·U` (row swaps recorded as a
//! deterministic swap sequence, `L` unit lower triangular, `U` upper
//! triangular) and solves `A·x = b` and `Aᵀ·y = c` against the factors.
//! This is the basis kernel of the revised simplex in `gecco-solver`
//! (FTRAN/BTRAN both reduce to one of these solves), so the discipline
//! there applies here: the pivot choice is the *first* maximal entry in
//! the column — a pure function of the input with no ambient state — and
//! the factorization either succeeds wholesale or reports singularity,
//! never dividing by a sub-threshold pivot.

/// LU factors of a square matrix: `P·A = L·U`.
#[derive(Debug, Clone)]
pub struct LuFactors {
    n: usize,
    /// Row-major packed factors: strictly-lower entries hold `L` (unit
    /// diagonal implied), the diagonal and above hold `U`.
    lu: Vec<f64>,
    /// Row swaps in application order; applying them to a vector in order
    /// computes `P·v`, in reverse order `Pᵀ·v` (each swap is an involution).
    swaps: Vec<(usize, usize)>,
}

impl LuFactors {
    /// Factorizes the `n×n` row-major matrix `a` (consumed in place).
    /// Returns `None` when some pivot column has no entry above `tiny` in
    /// magnitude — the matrix is singular to working precision. Partial
    /// pivoting takes the **first** maximal-magnitude entry, so equal
    /// inputs always factor identically.
    pub fn factorize(n: usize, mut a: Vec<f64>, tiny: f64) -> Option<LuFactors> {
        debug_assert_eq!(a.len(), n * n);
        let mut swaps = Vec::new();
        for k in 0..n {
            let mut best = k;
            let mut best_abs = a[k * n + k].abs();
            for i in k + 1..n {
                let mag = a[i * n + k].abs();
                if mag > best_abs {
                    best_abs = mag;
                    best = i;
                }
            }
            if best_abs <= tiny {
                return None;
            }
            if best != k {
                for c in 0..n {
                    a.swap(k * n + c, best * n + c);
                }
                swaps.push((k, best));
            }
            let piv = a[k * n + k];
            for i in k + 1..n {
                let factor = a[i * n + k] / piv;
                a[i * n + k] = factor;
                if factor != 0.0 {
                    for c in k + 1..n {
                        a[i * n + c] -= factor * a[k * n + c];
                    }
                }
            }
        }
        Some(LuFactors { n, lu: a, swaps })
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Solves `A·x = b` in place (`x` enters as `b`).
    pub fn solve(&self, x: &mut [f64]) {
        debug_assert_eq!(x.len(), self.n);
        let n = self.n;
        for &(a, b) in &self.swaps {
            x.swap(a, b);
        }
        // Forward: L·z = P·b (unit diagonal).
        for i in 0..n {
            let mut s = x[i];
            for (&l, &xj) in self.lu[i * n..i * n + i].iter().zip(x.iter()) {
                s -= l * xj;
            }
            x[i] = s;
        }
        // Back: U·x = z.
        for i in (0..n).rev() {
            let mut s = x[i];
            for (&u, &xj) in self.lu[i * n + i + 1..(i + 1) * n].iter().zip(&x[i + 1..]) {
                s -= u * xj;
            }
            x[i] = s / self.lu[i * n + i];
        }
    }

    /// Solves `Aᵀ·y = c` in place (`y` enters as `c`): with `P·A = L·U`,
    /// `Aᵀ = Uᵀ·Lᵀ·P`, so a forward solve against `Uᵀ`, a back solve
    /// against `Lᵀ` and the reversed swap sequence recover `y`.
    pub fn solve_transpose(&self, y: &mut [f64]) {
        debug_assert_eq!(y.len(), self.n);
        let n = self.n;
        // Forward: Uᵀ·v = c (the LU is row-major, so the column stride is n).
        for i in 0..n {
            let mut s = y[i];
            for (j, &yj) in y.iter().enumerate().take(i) {
                s -= self.lu[j * n + i] * yj;
            }
            y[i] = s / self.lu[i * n + i];
        }
        // Back: Lᵀ·w = v (unit diagonal).
        for i in (0..n).rev() {
            let mut s = y[i];
            for (j, &yj) in y.iter().enumerate().take(n).skip(i + 1) {
                s -= self.lu[j * n + i] * yj;
            }
            y[i] = s;
        }
        // y = Pᵀ·w.
        for &(a, b) in self.swaps.iter().rev() {
            y.swap(a, b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve_fresh(n: usize, a: &[f64], b: &[f64]) -> Vec<f64> {
        let lu = LuFactors::factorize(n, a.to_vec(), 1e-12).expect("nonsingular");
        let mut x = b.to_vec();
        lu.solve(&mut x);
        x
    }

    fn matvec(n: usize, a: &[f64], x: &[f64]) -> Vec<f64> {
        (0..n).map(|i| (0..n).map(|j| a[i * n + j] * x[j]).sum()).collect()
    }

    #[test]
    fn solves_a_small_system() {
        // Needs a row swap (zero leading pivot).
        let a = [0.0, 2.0, 1.0, 1.0, 1.0, 0.0, 3.0, 0.0, 1.0];
        let x = solve_fresh(3, &a, &[5.0, 3.0, 4.0]);
        let back = matvec(3, &a, &x);
        for (lhs, rhs) in back.iter().zip([5.0, 3.0, 4.0]) {
            assert!((lhs - rhs).abs() < 1e-9, "{back:?}");
        }
    }

    #[test]
    fn transpose_solve_matches_the_transposed_system() {
        let a = [0.0, 1.0, 2.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0, 4.0, 6.0, 1.0, 1.0, 0.0, 1.0, 5.0];
        let lu = LuFactors::factorize(4, a.to_vec(), 1e-12).unwrap();
        let c = [1.0, -2.0, 0.5, 3.0];
        let mut y = c;
        lu.solve_transpose(&mut y);
        // Check Aᵀ·y = c, i.e. Σ_i a[i][j]·y[i] = c[j].
        for j in 0..4 {
            let lhs: f64 = (0..4).map(|i| a[i * 4 + j] * y[i]).sum();
            assert!((lhs - c[j]).abs() < 1e-9, "column {j}: {lhs} vs {}", c[j]);
        }
    }

    #[test]
    fn reports_singularity() {
        // Second column is twice the first.
        let a = [1.0, 2.0, 2.0, 4.0];
        assert!(LuFactors::factorize(2, a.to_vec(), 1e-12).is_none());
        let empty = LuFactors::factorize(0, vec![], 1e-12).expect("trivially nonsingular");
        assert_eq!(empty.n(), 0);
        empty.solve(&mut []);
        empty.solve_transpose(&mut []);
    }

    #[test]
    fn identity_round_trip() {
        let n = 5;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = 1.0;
        }
        let b: Vec<f64> = (0..n).map(|i| i as f64 - 2.0).collect();
        assert_eq!(solve_fresh(n, &a, &b), b);
    }
}
