//! k-means clustering with deterministic farthest-point seeding.
//!
//! Used to cluster the rows of the spectral embedding in `BL_P`. Seeding is
//! deterministic (first centroid = point with the largest norm, then
//! farthest-point), so baseline runs are reproducible without threading an
//! RNG through the experiment harness.

use crate::matrix::Matrix;

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster index per input row.
    pub assignment: Vec<usize>,
    /// Final centroids (k × dims).
    pub centroids: Matrix,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
    /// Iterations until convergence.
    pub iterations: usize,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Clusters the rows of `points` into `k` clusters (Lloyd's algorithm,
/// at most `max_iters` rounds).
///
/// # Panics
/// Panics if `k` is zero or exceeds the number of rows.
pub fn kmeans(points: &Matrix, k: usize, max_iters: usize) -> KMeansResult {
    let n = points.rows();
    let d = points.cols();
    assert!(k >= 1 && k <= n, "need 1 <= k <= #points, got k={k}, n={n}");
    // Farthest-point seeding.
    let mut centroid_rows: Vec<usize> = Vec::with_capacity(k);
    let first = (0..n)
        .max_by(|&i, &j| {
            sq_dist(points.row(i), &vec![0.0; d]).total_cmp(&sq_dist(points.row(j), &vec![0.0; d]))
        })
        .expect("non-empty");
    centroid_rows.push(first);
    while centroid_rows.len() < k {
        let next = (0..n)
            .max_by(|&i, &j| {
                let di = centroid_rows
                    .iter()
                    .map(|&c| sq_dist(points.row(i), points.row(c)))
                    .fold(f64::INFINITY, f64::min);
                let dj = centroid_rows
                    .iter()
                    .map(|&c| sq_dist(points.row(j), points.row(c)))
                    .fold(f64::INFINITY, f64::min);
                di.total_cmp(&dj)
            })
            .expect("non-empty");
        centroid_rows.push(next);
    }
    let mut centroids = Matrix::zeros(k, d);
    for (ci, &r) in centroid_rows.iter().enumerate() {
        for j in 0..d {
            centroids[(ci, j)] = points[(r, j)];
        }
    }
    let mut assignment = vec![0usize; n];
    let mut iterations = 0;
    for it in 0..max_iters {
        iterations = it + 1;
        // Assign.
        let mut changed = false;
        for (i, slot) in assignment.iter_mut().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| {
                    sq_dist(points.row(i), centroids.row(a))
                        .total_cmp(&sq_dist(points.row(i), centroids.row(b)))
                })
                .expect("k >= 1");
            if *slot != best {
                *slot = best;
                changed = true;
            }
        }
        if !changed && it > 0 {
            break;
        }
        // Update.
        let mut sums = Matrix::zeros(k, d);
        let mut counts = vec![0usize; k];
        for i in 0..n {
            counts[assignment[i]] += 1;
            for j in 0..d {
                sums[(assignment[i], j)] += points[(i, j)];
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster at the point farthest from its
                // centroid assignment.
                let far = (0..n)
                    .max_by(|&i, &j| {
                        sq_dist(points.row(i), centroids.row(assignment[i]))
                            .total_cmp(&sq_dist(points.row(j), centroids.row(assignment[j])))
                    })
                    .expect("non-empty");
                for j in 0..d {
                    centroids[(c, j)] = points[(far, j)];
                }
            } else {
                for j in 0..d {
                    centroids[(c, j)] = sums[(c, j)] / counts[c] as f64;
                }
            }
        }
    }
    let inertia = (0..n).map(|i| sq_dist(points.row(i), centroids.row(assignment[i]))).sum();
    KMeansResult { assignment, centroids, inertia, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_two_obvious_clusters() {
        let pts = Matrix::from_rows(&[
            &[0.0, 0.0],
            &[0.1, 0.0],
            &[0.0, 0.1],
            &[5.0, 5.0],
            &[5.1, 5.0],
            &[5.0, 5.1],
        ]);
        let r = kmeans(&pts, 2, 100);
        assert_eq!(r.assignment[0], r.assignment[1]);
        assert_eq!(r.assignment[1], r.assignment[2]);
        assert_eq!(r.assignment[3], r.assignment[4]);
        assert_eq!(r.assignment[4], r.assignment[5]);
        assert_ne!(r.assignment[0], r.assignment[3]);
        assert!(r.inertia < 0.1);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let pts = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]);
        let r = kmeans(&pts, 3, 100);
        assert!(r.inertia < 1e-12);
        let mut sorted = r.assignment.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn k_one_puts_everything_together() {
        let pts = Matrix::from_rows(&[&[0.0], &[10.0]]);
        let r = kmeans(&pts, 1, 100);
        assert_eq!(r.assignment, vec![0, 0]);
        assert!((r.centroids[(0, 0)] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic() {
        let pts = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0], &[5.0, 5.0], &[6.0, 6.0]]);
        let a = kmeans(&pts, 2, 50);
        let b = kmeans(&pts, 2, 50);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    #[should_panic(expected = "1 <= k")]
    fn rejects_bad_k() {
        let pts = Matrix::from_rows(&[&[0.0]]);
        kmeans(&pts, 2, 10);
    }
}
