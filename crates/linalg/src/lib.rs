//! Minimal dense linear algebra for the spectral-partitioning baseline.
//!
//! Provides exactly what `BL_P` (§VI-A) needs: a dense [`Matrix`], a
//! symmetric [`jacobi`] eigensolver (cyclic Jacobi rotations — robust and
//! dependency-free, ideal at DFG sizes of ≤ 256 nodes) and [`kmeans()`] with
//! farthest-point seeding for clustering the spectral embedding.

pub mod jacobi;
pub mod kmeans;
pub mod matrix;

pub use jacobi::{eigen_symmetric, Eigen};
pub use kmeans::{kmeans, KMeansResult};
pub use matrix::Matrix;
