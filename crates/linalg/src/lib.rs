//! Minimal dense linear algebra for the spectral-partitioning baseline
//! and the revised-simplex basis kernel.
//!
//! Provides exactly what `BL_P` (§VI-A) needs — a dense [`Matrix`], a
//! symmetric [`jacobi`] eigensolver (cyclic Jacobi rotations — robust and
//! dependency-free, ideal at DFG sizes of ≤ 256 nodes) and [`kmeans()`]
//! with farthest-point seeding for clustering the spectral embedding —
//! plus [`LuFactors`], the pivoting LU factorization behind the
//! column-generation master's FTRAN/BTRAN solves in `gecco-solver`.

pub mod jacobi;
pub mod kmeans;
pub mod lu;
pub mod matrix;

pub use jacobi::{eigen_symmetric, Eigen};
pub use kmeans::{kmeans, KMeansResult};
pub use lu::LuFactors;
pub use matrix::Matrix;
