//! Constraint suggestion — the paper's §VIII future-work direction
//! ("we aim to develop an approach to suggest interesting constraints to
//! users for a given log"), implemented as data-driven heuristics.
//!
//! Given a log, the suggester inspects its attributes and shape and
//! proposes a ranked list of plausible constraints with rationales:
//!
//! * categorical event attributes whose value is constant per event class
//!   partition the classes into blocks (roles, departments, systems) —
//!   suggest instance-purity constraints on them;
//! * class-level attributes suggest `distinct(class, …) ≤ 1`;
//! * timestamps suggest gap bounds at a high percentile of observed
//!   within-trace gaps (big outliers usually separate activities);
//! * the class count suggests grouping bounds that guarantee an actual
//!   abstraction without collapsing everything.

use crate::spec::{ClassExpr, Cmp, Constraint, InstanceExpr};
use gecco_eventlog::{EventLog, Symbol};
use std::collections::{BTreeMap, HashMap, HashSet};

/// A proposed constraint with a human-readable justification.
#[derive(Debug, Clone)]
pub struct Suggestion {
    /// The proposed constraint (log-independent spec).
    pub constraint: Constraint,
    /// Why the suggester proposes it.
    pub rationale: String,
    /// Rough interest score for ranking (higher = stronger signal).
    pub score: f64,
}

/// Analyzes `log` and returns ranked constraint suggestions.
pub fn suggest_constraints(log: &EventLog) -> Vec<Suggestion> {
    let mut out = Vec::new();
    suggest_grouping_bounds(log, &mut out);
    suggest_categorical_purity(log, &mut out);
    suggest_class_attribute_purity(log, &mut out);
    suggest_gap_bound(log, &mut out);
    out.sort_by(|a, b| b.score.total_cmp(&a.score));
    out
}

/// Grouping bounds: aim for a meaningful reduction without collapse.
fn suggest_grouping_bounds(log: &EventLog, out: &mut Vec<Suggestion>) {
    let n = log.num_classes();
    if n >= 6 {
        out.push(Suggestion {
            constraint: Constraint::GroupCount { cmp: Cmp::Ge, bound: 3 },
            rationale: format!(
                "with {n} event classes, keeping at least 3 activities avoids collapsing \
                 the whole process into a single step"
            ),
            score: 0.3,
        });
        out.push(Suggestion {
            constraint: Constraint::group_size(Cmp::Le, 8.max(n as u32 / 4)),
            rationale: "bounding the group size keeps activities interpretable and the \
                        search tractable"
                .to_string(),
            score: 0.4,
        });
    }
}

/// Categorical event attributes that are constant per class and partition
/// the classes into 2..=8 blocks — classic role/system/department columns.
fn suggest_categorical_purity(log: &EventLog, out: &mut Vec<Suggestion>) {
    // attribute key -> class -> set of observed value symbols
    let mut observed: HashMap<Symbol, HashMap<u16, HashSet<Symbol>>> = HashMap::new();
    for trace in log.traces() {
        for event in trace.events() {
            for (key, value) in event.attributes() {
                if *key == log.std_keys().concept_name || *key == log.std_keys().timestamp {
                    continue;
                }
                if let Some(sym) = value.as_symbol() {
                    observed
                        .entry(*key)
                        .or_default()
                        .entry(event.class().0)
                        .or_default()
                        .insert(sym);
                }
            }
        }
    }
    // Hash state must not pick the emission order: the score sort is
    // stable, so equal-scoring suggestions keep it. Enumerate attributes
    // by resolved name — deterministic across runs *and* across symbol
    // numberings (symbol ids depend on attribute first-use order).
    let ranked: BTreeMap<&str, &HashMap<u16, HashSet<Symbol>>> =
        observed.iter().map(|(key, per_class)| (log.resolve(*key), per_class)).collect();
    for (name, per_class) in ranked {
        if per_class.len() < log.num_classes().max(1) {
            continue; // attribute missing for some classes
        }
        let constant_per_class = per_class.values().all(|vals| vals.len() == 1);
        if !constant_per_class {
            continue;
        }
        let blocks: HashSet<Symbol> = per_class.values().flat_map(|v| v.iter().copied()).collect();
        if (2..=8).contains(&blocks.len()) && blocks.len() < log.num_classes() {
            let name = name.to_string();
            out.push(Suggestion {
                constraint: Constraint::instance(
                    InstanceExpr::Distinct(name.clone()),
                    Cmp::Le,
                    1.0,
                ),
                rationale: format!(
                    "`{name}` is constant per event class and partitions the {} classes \
                     into {} blocks — activities that stay pure in it (one value per \
                     instance) preserve the hand-over structure",
                    log.num_classes(),
                    blocks.len()
                ),
                // Fewer blocks for more classes = stronger partition signal.
                score: 1.0 - blocks.len() as f64 / log.num_classes() as f64,
            });
        }
    }
}

/// Class-level attributes (e.g. the originating system of the case study).
fn suggest_class_attribute_purity(log: &EventLog, out: &mut Vec<Suggestion>) {
    let mut keys: HashSet<Symbol> = HashSet::new();
    for c in log.classes().ids() {
        for (k, _) in &log.classes().info(c).attributes {
            keys.insert(*k);
        }
    }
    // Same discipline as above: emission order comes from attribute
    // names, never from hash state.
    let ranked: BTreeMap<&str, Symbol> = keys.iter().map(|k| (log.resolve(*k), *k)).collect();
    for (name, key) in ranked {
        let on_all = log.classes().ids().all(|c| log.classes().info(c).attribute(key).is_some());
        if !on_all {
            continue;
        }
        let distinct: HashSet<_> = log
            .classes()
            .ids()
            .filter_map(|c| log.classes().info(c).attribute(key).map(|v| v.distinct_key()))
            .collect();
        if distinct.len() >= 2 && distinct.len() < log.num_classes() {
            let name = name.to_string();
            out.push(Suggestion {
                constraint: Constraint::ClassBound {
                    expr: ClassExpr::DistinctAttr(name.clone()),
                    cmp: Cmp::Le,
                    bound: 1.0,
                },
                rationale: format!(
                    "class-level attribute `{name}` tags every class with one of {} \
                     values (cf. the paper's case study: one originating system per \
                     activity)",
                    distinct.len()
                ),
                score: 1.0,
            });
        }
    }
}

/// Gap bound from the within-trace inter-event time distribution: a bound
/// at ~P90 tends to cut between activities rather than within them.
fn suggest_gap_bound(log: &EventLog, out: &mut Vec<Suggestion>) {
    let ts = log.std_keys().timestamp;
    let mut gaps: Vec<i64> = Vec::new();
    for trace in log.traces() {
        let mut prev: Option<i64> = None;
        for event in trace.events() {
            if let Some(t) = event.timestamp(ts) {
                if let Some(p) = prev {
                    gaps.push((t - p).max(0));
                }
                prev = Some(t);
            }
        }
    }
    if gaps.len() < 10 {
        return;
    }
    gaps.sort_unstable();
    let p90 = gaps[(gaps.len() as f64 * 0.9) as usize % gaps.len()];
    if p90 > 0 && p90 > gaps[gaps.len() / 2] {
        out.push(Suggestion {
            constraint: Constraint::instance(
                InstanceExpr::MaxGap("time:timestamp".to_string()),
                Cmp::Le,
                p90 as f64,
            ),
            rationale: format!(
                "90% of consecutive events are at most {p90} ms apart; larger gaps \
                 likely separate different activities"
            ),
            score: 0.5,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecco_eventlog::LogBuilder;

    fn role_log() -> EventLog {
        let mut b = LogBuilder::new();
        for i in 0..5 {
            b.trace(&format!("t{i}"))
                .event_with("a", |e| {
                    e.str("org:role", "clerk").timestamp("time:timestamp", i * 1000);
                })
                .unwrap()
                .event_with("b", |e| {
                    e.str("org:role", "clerk").timestamp("time:timestamp", i * 1000 + 10);
                })
                .unwrap()
                .event_with("c", |e| {
                    e.str("org:role", "boss").timestamp("time:timestamp", i * 1000 + 500);
                })
                .unwrap()
                .event_with("d", |e| {
                    e.str("org:role", "boss").timestamp("time:timestamp", i * 1000 + 520);
                })
                .unwrap()
                .done();
        }
        b.build()
    }

    #[test]
    fn suggests_role_purity_for_partitioning_attribute() {
        let log = role_log();
        let suggestions = suggest_constraints(&log);
        let role = suggestions.iter().find(|s| {
            matches!(&s.constraint,
                Constraint::InstanceBound { expr: InstanceExpr::Distinct(a), .. } if a == "org:role")
        });
        let role = role.expect("role purity should be suggested");
        assert!(role.rationale.contains("org:role"));
        assert!(role.rationale.contains("2 blocks"));
    }

    #[test]
    fn suggests_class_attribute_purity() {
        let log = gecco_eventlog::LogBuilder::new();
        let mut b = log;
        b.class_attr_str("x", "system", "A").unwrap();
        b.class_attr_str("y", "system", "B").unwrap();
        b.class_attr_str("z", "system", "A").unwrap();
        b.trace("t").event("x").unwrap().event("y").unwrap().event("z").unwrap().done();
        let log = b.build();
        let suggestions = suggest_constraints(&log);
        assert!(suggestions.iter().any(|s| matches!(
            &s.constraint,
            Constraint::ClassBound { expr: ClassExpr::DistinctAttr(a), .. } if a == "system"
        )));
    }

    #[test]
    fn suggests_gap_bound_when_timestamps_vary() {
        let log = role_log();
        let suggestions = suggest_constraints(&log);
        assert!(suggestions.iter().any(|s| matches!(
            &s.constraint,
            Constraint::InstanceBound { expr: InstanceExpr::MaxGap(_), .. }
        )));
    }

    #[test]
    fn no_purity_suggestion_for_varying_attribute() {
        // An attribute that varies within a class is not a partition signal.
        let mut b = LogBuilder::new();
        for i in 0..5 {
            b.trace(&format!("t{i}"))
                .event_with("a", |e| {
                    e.str("who", if i % 2 == 0 { "p" } else { "q" });
                })
                .unwrap()
                .event_with("b", |e| {
                    e.str("who", "p");
                })
                .unwrap()
                .done();
        }
        let log = b.build();
        let suggestions = suggest_constraints(&log);
        assert!(!suggestions.iter().any(|s| matches!(
            &s.constraint,
            Constraint::InstanceBound { expr: InstanceExpr::Distinct(a), .. } if a == "who"
        )));
    }

    /// Four partition attributes with identical scores, attached to each
    /// event in either forward or reversed order. Reversing changes both
    /// any hash-map insertion order and the symbol numbering of the keys.
    fn attr_log(reversed: bool) -> EventLog {
        let attrs: [(&str, [&str; 4]); 4] = [
            ("org:role", ["r1", "r1", "r2", "r2"]),
            ("org:dept", ["d1", "d2", "d1", "d2"]),
            ("org:system", ["s1", "s2", "s2", "s1"]),
            ("org:site", ["x1", "x1", "x1", "x2"]),
        ];
        let mut b = LogBuilder::new();
        for t in 0..3 {
            let mut tb = b.trace(&format!("t{t}"));
            for (ci, class) in ["a", "b", "c", "d"].iter().enumerate() {
                tb = tb
                    .event_with(class, |e| {
                        let mut order: Vec<usize> = (0..attrs.len()).collect();
                        if reversed {
                            order.reverse();
                        }
                        for i in order {
                            e.str(attrs[i].0, attrs[i].1[ci]);
                        }
                    })
                    .unwrap();
            }
            tb.done();
        }
        b.build()
    }

    #[test]
    fn suggestion_order_is_independent_of_attribute_insert_order() {
        // All four purity suggestions tie at score 0.5; the tie-break must
        // come from attribute names, not hash state or symbol numbering.
        let render = |log: &EventLog| -> Vec<(String, String, u64)> {
            suggest_constraints(log)
                .iter()
                .map(|s| (format!("{:?}", s.constraint), s.rationale.clone(), s.score.to_bits()))
                .collect()
        };
        let forward = render(&attr_log(false));
        let reversed = render(&attr_log(true));
        assert_eq!(forward, reversed);
        let purity = forward.iter().filter(|(c, _, _)| c.contains("Distinct")).count();
        assert!(purity >= 4, "expected all four purity suggestions: {forward:?}");
    }

    #[test]
    fn suggestions_are_ranked() {
        let log = role_log();
        let suggestions = suggest_constraints(&log);
        for pair in suggestions.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn suggested_constraints_compile_and_run() {
        use crate::compiled::CompiledConstraintSet;
        use crate::spec::ConstraintSet;
        let log = role_log();
        for s in suggest_constraints(&log) {
            let set = ConstraintSet::from_constraints(vec![s.constraint.clone()]);
            let compiled = CompiledConstraintSet::compile(&set, &log)
                .unwrap_or_else(|e| panic!("suggestion {:?} failed to compile: {e}", s.constraint));
            // Every suggestion must be satisfiable at least by singletons.
            let index = gecco_eventlog::LogIndex::build(&log);
            let ctx = gecco_eventlog::EvalContext::new(&log, &index);
            let feasible = log
                .classes()
                .ids()
                .all(|c| compiled.holds(&gecco_eventlog::ClassSet::singleton(c), &ctx));
            assert!(feasible, "suggestion {} infeasible for singletons", s.constraint);
        }
    }
}
