//! Constraint compilation and evaluation against a concrete log.
//!
//! The `holds` predicate of §IV-A: class-based constraints are checked
//! before instance-based ones because the former need no pass over the log
//! (§V-B "we check constraints in R_C before ones in R_I, … minimizing the
//! validation cost per candidate").
//!
//! Evaluation runs against an [`EvalContext`]: instance-based checks
//! materialize group instances through the log's
//! [`gecco_eventlog::LogIndex`] (touching only traces that contain a group
//! class) and, when the context carries a shared
//! [`gecco_eventlog::InstanceCache`], reuse materialized instances across
//! candidates and constraint sets and memoize `holds` verdicts per compiled
//! set. The naive full-log scan survives as the
//! [`CompiledConstraintSet::holds_scan`] /
//! [`CompiledConstraintSet::check_instances_scan`] oracle used by the
//! equivalence test suites and the scan-vs-indexed benchmarks; both paths
//! are bit-identical by construction (they share the per-instance
//! accumulator).

use crate::monotonicity::{checking_mode, CheckingMode, Monotonicity};
use crate::spec::{ClassExpr, Cmp, Constraint, ConstraintSet, InstanceExpr};
use gecco_eventlog::{
    instances, ClassId, ClassSet, EvalContext, EventLog, GroupInstance, Segmenter, Symbol, Trace,
};
use std::collections::HashSet;
use std::fmt;
use std::fmt::Write as _;
use std::ops::ControlFlow;

/// Error raised when a specification does not fit the log.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The named attribute never occurs in the log.
    UnknownAttribute(String),
    /// The named event class does not occur in the log.
    UnknownClass(String),
    /// A class-scope `distinct` constraint references an attribute that
    /// some class lacks — the constraint is inapplicable to this log
    /// (cf. the paper's footnote: `BL3` applies to 4 of 13 logs only).
    MissingClassAttribute {
        /// The attribute name.
        attribute: String,
        /// A class without it.
        class: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnknownAttribute(a) => write!(f, "unknown attribute {a:?}"),
            CompileError::UnknownClass(c) => write!(f, "unknown event class {c:?}"),
            CompileError::MissingClassAttribute { attribute, class } => {
                write!(f, "class {class:?} lacks class-level attribute {attribute:?}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// A class-based constraint compiled to interned ids.
#[derive(Debug, Clone)]
pub(crate) enum ClassCheck {
    Size { cmp: Cmp, bound: f64 },
    DistinctAttr { key: Symbol, cmp: Cmp, bound: f64 },
    CannotLink(ClassId, ClassId),
    MustLink(ClassId, ClassId),
}

/// An instance-based expression compiled to interned ids.
#[derive(Debug, Clone)]
pub(crate) enum InstExpr {
    Count,
    CountClass(ClassId),
    Distinct(Symbol),
    Sum(Symbol),
    Avg(Symbol),
    Min(Symbol),
    Max(Symbol),
    Span(Symbol),
    MaxGap(Symbol),
}

#[derive(Debug, Clone)]
pub(crate) struct InstCheck {
    pub(crate) expr: InstExpr,
    pub(crate) cmp: Cmp,
    pub(crate) bound: f64,
    pub(crate) min_fraction: f64,
    pub(crate) monotonicity: Monotonicity,
    pub(crate) spec_index: usize,
}

/// A [`ConstraintSet`] compiled against one log, ready for evaluation.
#[derive(Debug, Clone)]
pub struct CompiledConstraintSet {
    spec: ConstraintSet,
    pub(crate) class_checks: Vec<(usize, ClassCheck, Monotonicity)>,
    pub(crate) inst_checks: Vec<InstCheck>,
    group_min: Option<u32>,
    group_max: Option<u32>,
    mode: CheckingMode,
    segmenter: Segmenter,
    /// Structural signature of this compilation (rendered constraints plus
    /// segmenter), resolved to a verdict-cache token via
    /// [`gecco_eventlog::InstanceCache::token_for`]. Re-compilations of an
    /// identical specification share the signature, so memoized verdicts
    /// stay hittable across pipeline runs over the same cache.
    signature: String,
}

impl CompiledConstraintSet {
    /// Compiles `spec` against `log` using the default
    /// [`Segmenter::RepeatSplit`].
    pub fn compile(spec: &ConstraintSet, log: &EventLog) -> Result<Self, CompileError> {
        Self::compile_with(spec, log, Segmenter::RepeatSplit)
    }

    /// Compiles with an explicit instance segmenter.
    pub fn compile_with(
        spec: &ConstraintSet,
        log: &EventLog,
        segmenter: Segmenter,
    ) -> Result<Self, CompileError> {
        let mut class_checks = Vec::new();
        let mut inst_checks = Vec::new();
        let mut group_min: Option<u32> = None;
        let mut group_max: Option<u32> = None;

        let lookup_attr = |name: &str| {
            log.key(name).ok_or_else(|| CompileError::UnknownAttribute(name.to_string()))
        };
        let lookup_class = |name: &str| {
            log.class_by_name(name).ok_or_else(|| CompileError::UnknownClass(name.to_string()))
        };

        for (i, c) in spec.constraints().iter().enumerate() {
            let mono = c.monotonicity();
            match c {
                Constraint::GroupCount { cmp, bound } => match cmp {
                    Cmp::Le => group_max = Some(group_max.map_or(*bound, |b| b.min(*bound))),
                    Cmp::Ge => group_min = Some(group_min.map_or(*bound, |b| b.max(*bound))),
                    Cmp::Eq => {
                        group_min = Some(group_min.map_or(*bound, |b| b.max(*bound)));
                        group_max = Some(group_max.map_or(*bound, |b| b.min(*bound)));
                    }
                },
                Constraint::ClassBound { expr, cmp, bound } => {
                    let check = match expr {
                        ClassExpr::Size => ClassCheck::Size { cmp: *cmp, bound: *bound },
                        ClassExpr::DistinctAttr(attr) => {
                            let key = lookup_attr(attr)?;
                            // Every class must carry the attribute; otherwise
                            // the constraint is inapplicable to this log.
                            for id in log.classes().ids() {
                                if log.classes().info(id).attribute(key).is_none() {
                                    return Err(CompileError::MissingClassAttribute {
                                        attribute: attr.clone(),
                                        class: log.class_name(id).to_string(),
                                    });
                                }
                            }
                            ClassCheck::DistinctAttr { key, cmp: *cmp, bound: *bound }
                        }
                    };
                    class_checks.push((i, check, mono));
                }
                Constraint::CannotLink { a, b } => {
                    class_checks.push((
                        i,
                        ClassCheck::CannotLink(lookup_class(a)?, lookup_class(b)?),
                        mono,
                    ));
                }
                Constraint::MustLink { a, b } => {
                    class_checks.push((
                        i,
                        ClassCheck::MustLink(lookup_class(a)?, lookup_class(b)?),
                        mono,
                    ));
                }
                Constraint::InstanceBound { expr, cmp, bound, min_fraction } => {
                    let compiled = match expr {
                        InstanceExpr::Count => InstExpr::Count,
                        InstanceExpr::CountClass(c) => InstExpr::CountClass(lookup_class(c)?),
                        InstanceExpr::Distinct(a) => InstExpr::Distinct(lookup_attr(a)?),
                        InstanceExpr::Sum(a) => InstExpr::Sum(lookup_attr(a)?),
                        InstanceExpr::Avg(a) => InstExpr::Avg(lookup_attr(a)?),
                        InstanceExpr::Min(a) => InstExpr::Min(lookup_attr(a)?),
                        InstanceExpr::Max(a) => InstExpr::Max(lookup_attr(a)?),
                        InstanceExpr::Span(a) => InstExpr::Span(lookup_attr(a)?),
                        InstanceExpr::MaxGap(a) => InstExpr::MaxGap(lookup_attr(a)?),
                    };
                    inst_checks.push(InstCheck {
                        expr: compiled,
                        cmp: *cmp,
                        bound: *bound,
                        min_fraction: *min_fraction,
                        monotonicity: mono,
                        spec_index: i,
                    });
                }
            }
        }
        let mode = checking_mode(
            class_checks
                .iter()
                .map(|(_, _, m)| *m)
                .chain(inst_checks.iter().map(|c| c.monotonicity)),
        );
        let mut signature = format!("{segmenter:?}");
        for constraint in spec.constraints() {
            let _ = write!(signature, ";{constraint}");
        }
        Ok(CompiledConstraintSet {
            spec: spec.clone(),
            class_checks,
            inst_checks,
            group_min,
            group_max,
            mode,
            segmenter,
            signature,
        })
    }

    /// The original specification.
    pub fn spec(&self) -> &ConstraintSet {
        &self.spec
    }

    /// The constraint-checking mode derived from `R \ R_G`
    /// (`setCheckingMode(R)`, Algorithm 1 line 1).
    pub fn mode(&self) -> CheckingMode {
        self.mode
    }

    /// The instance segmenter used for `R_I` evaluation.
    pub fn segmenter(&self) -> Segmenter {
        self.segmenter
    }

    /// Effective bounds on the number of groups `(min, max)` from `R_G`.
    pub fn group_count_bounds(&self) -> (Option<u32>, Option<u32>) {
        (self.group_min, self.group_max)
    }

    /// Whether a grouping of `k` groups satisfies `R_G`.
    pub fn group_count_ok(&self, k: usize) -> bool {
        self.group_min.is_none_or(|m| k >= m as usize)
            && self.group_max.is_none_or(|m| k <= m as usize)
    }

    /// Whether any instance-based constraints exist (they require a pass
    /// over the log per candidate).
    pub fn has_instance_constraints(&self) -> bool {
        !self.inst_checks.is_empty()
    }

    /// Structural signature of this compilation (verdict-cache key
    /// component; equal for re-compilations of the same specification).
    pub fn signature(&self) -> &str {
        &self.signature
    }

    /// Checks `R_C` for one group; returns the spec index of the first
    /// violated constraint. Class-based checks never touch the traces, so
    /// only the context's log is consulted.
    pub fn check_class(&self, group: &ClassSet, ctx: &EvalContext<'_>) -> Result<(), usize> {
        self.check_class_filtered(group, ctx.log(), |_| true)
    }

    fn check_class_filtered(
        &self,
        group: &ClassSet,
        log: &EventLog,
        filter: impl Fn(Monotonicity) -> bool,
    ) -> Result<(), usize> {
        for (spec_index, check, mono) in &self.class_checks {
            if !filter(*mono) {
                continue;
            }
            let ok = match check {
                ClassCheck::Size { cmp, bound } => cmp.eval(group.len() as f64, *bound),
                ClassCheck::DistinctAttr { key, cmp, bound } => {
                    let mut seen = HashSet::new();
                    for c in group.iter() {
                        if let Some(v) = log.classes().info(c).attribute(*key) {
                            seen.insert(v.distinct_key());
                        }
                    }
                    cmp.eval(seen.len() as f64, *bound)
                }
                ClassCheck::CannotLink(a, b) => !(group.contains(*a) && group.contains(*b)),
                ClassCheck::MustLink(a, b) => group.contains(*a) == group.contains(*b),
            };
            if !ok {
                return Err(*spec_index);
            }
        }
        Ok(())
    }

    /// Checks `R_I` for one group over the whole log via the context's
    /// index; returns the spec index of the first violated constraint.
    pub fn check_instances(&self, group: &ClassSet, ctx: &EvalContext<'_>) -> Result<(), usize> {
        self.check_instances_filtered(group, ctx, |_| true)
    }

    fn check_instances_filtered(
        &self,
        group: &ClassSet,
        ctx: &EvalContext<'_>,
        filter: impl Fn(Monotonicity) -> bool,
    ) -> Result<(), usize> {
        let active: Vec<&InstCheck> =
            self.inst_checks.iter().filter(|c| filter(c.monotonicity)).collect();
        if active.is_empty() {
            return Ok(());
        }
        let mut acc = InstanceAccumulator::new(&active);
        let traces = ctx.log().traces();
        // With a shared cache attached, materialize `inst(L, g)` once and
        // reuse it for every constraint set evaluating the same group.
        if let Some(cache) = ctx.cache() {
            let cached = cache.get_or_insert_instances(group, self.segmenter, || {
                let mut out = Vec::new();
                let _: Option<()> = ctx.visit_instances(group, self.segmenter, |ti, inst| {
                    out.push((ti as u32, inst));
                    ControlFlow::Continue(())
                });
                out
            });
            for (ti, inst) in cached.iter() {
                if let ControlFlow::Break(spec_index) = acc.feed(&traces[*ti as usize], inst) {
                    return Err(spec_index);
                }
            }
            return acc.finish();
        }
        let early =
            ctx.visit_instances(group, self.segmenter, |ti, inst| acc.feed(&traces[ti], &inst));
        match early {
            Some(spec_index) => Err(spec_index),
            None => acc.finish(),
        }
    }

    /// The naive full-log-scan evaluation of `R_I`, kept as the oracle for
    /// the index-equivalence test suites and the scan-vs-indexed
    /// benchmarks. Bit-identical to [`Self::check_instances`].
    pub fn check_instances_scan(&self, group: &ClassSet, log: &EventLog) -> Result<(), usize> {
        let active: Vec<&InstCheck> = self.inst_checks.iter().collect();
        if active.is_empty() {
            return Ok(());
        }
        let mut acc = InstanceAccumulator::new(&active);
        for (ti, trace) in log.traces().iter().enumerate() {
            if !log.trace_class_sets()[ti].intersects(group) {
                continue; // vacuously satisfied for this trace
            }
            for inst in instances(trace, group, self.segmenter) {
                if let ControlFlow::Break(spec_index) = acc.feed(trace, &inst) {
                    return Err(spec_index);
                }
            }
        }
        acc.finish()
    }

    /// The full per-group `holds` predicate: `R_C` first, then `R_I`.
    /// Verdicts are memoized in the context's shared cache (keyed by this
    /// compilation's token) when one is attached.
    pub fn holds(&self, group: &ClassSet, ctx: &EvalContext<'_>) -> bool {
        self.cached_verdict(ctx, group, VerdictKind::Full, |cs| {
            cs.check_class(group, ctx).is_ok() && cs.check_instances(group, ctx).is_ok()
        })
    }

    /// Scan-oracle twin of [`Self::holds`]: evaluates against the raw log
    /// with no index and no cache.
    pub fn holds_scan(&self, group: &ClassSet, log: &EventLog) -> bool {
        self.check_class_filtered(group, log, |_| true).is_ok()
            && self.check_instances_scan(group, log).is_ok()
    }

    /// Like [`Self::holds`], but reports the violated spec index.
    pub fn holds_detailed(&self, group: &ClassSet, ctx: &EvalContext<'_>) -> Result<(), usize> {
        self.check_class(group, ctx)?;
        self.check_instances(group, ctx)
    }

    /// Checks only the **anti-monotonic** subset of the constraints. Used
    /// as the expansion gate in anti-monotonic checking mode: a group that
    /// fails any anti-monotonic constraint can never be repaired by growing
    /// it, while failures of monotonic/non-monotonic constraints can.
    pub fn holds_anti_monotonic(&self, group: &ClassSet, ctx: &EvalContext<'_>) -> bool {
        self.cached_verdict(ctx, group, VerdictKind::AntiMonotonic, |cs| {
            let anti = |m: Monotonicity| m == Monotonicity::AntiMonotonic;
            cs.check_class_filtered(group, ctx.log(), anti).is_ok()
                && cs.check_instances_filtered(group, ctx, anti).is_ok()
        })
    }

    /// Memoizes a boolean verdict in the context's shared cache, if any.
    fn cached_verdict(
        &self,
        ctx: &EvalContext<'_>,
        group: &ClassSet,
        kind: VerdictKind,
        compute: impl FnOnce(&Self) -> bool,
    ) -> bool {
        let Some(cache) = ctx.cache() else {
            return compute(self);
        };
        let key = (cache.token_for(&self.signature) << 1) | kind as u64;
        if let Some(verdict) = cache.verdict(key, group) {
            return verdict;
        }
        let verdict = compute(self);
        cache.store_verdict(key, group, verdict);
        verdict
    }

    /// All must-link pairs (needed by baselines that merge rather than
    /// search).
    pub fn must_link_pairs(&self) -> Vec<(ClassId, ClassId)> {
        self.class_checks
            .iter()
            .filter_map(|(_, c, _)| match c {
                ClassCheck::MustLink(a, b) => Some((*a, *b)),
                _ => None,
            })
            .collect()
    }
}

/// Which verdict a cache entry stores; folded into the cache key next to
/// the compilation token.
#[derive(Debug, Clone, Copy)]
enum VerdictKind {
    Full = 0,
    AntiMonotonic = 1,
}

/// The per-instance bookkeeping of `R_I` evaluation, shared by the indexed
/// path, the cached path and the scan oracle so their verdicts cannot
/// diverge: strict constraints (min_fraction ≥ 1) fail fast on the first
/// violating instance, loose ones tally violations and compare fractions
/// at the end.
struct InstanceAccumulator<'a, 'b> {
    active: &'a [&'b InstCheck],
    all_strict: bool,
    total_instances: usize,
    violations: Vec<usize>,
}

impl<'a, 'b> InstanceAccumulator<'a, 'b> {
    fn new(active: &'a [&'b InstCheck]) -> Self {
        InstanceAccumulator {
            active,
            all_strict: active.iter().all(|c| c.min_fraction >= 1.0),
            total_instances: 0,
            violations: vec![0usize; active.len()],
        }
    }

    /// Feeds one instance; breaks with the violated spec index when a
    /// strict evaluation can already conclude.
    fn feed(&mut self, trace: &Trace, inst: &GroupInstance) -> ControlFlow<usize> {
        self.total_instances += 1;
        for (ci, check) in self.active.iter().enumerate() {
            let ok = match eval_expr(&check.expr, trace, inst) {
                Some(v) => check.cmp.eval(v, check.bound),
                None => true, // vacuous: no values to aggregate
            };
            if !ok {
                if self.all_strict {
                    return ControlFlow::Break(check.spec_index);
                }
                self.violations[ci] += 1;
            }
        }
        ControlFlow::Continue(())
    }

    /// Final verdict once every instance has been fed.
    fn finish(self) -> Result<(), usize> {
        if !self.all_strict && self.total_instances > 0 {
            for (ci, check) in self.active.iter().enumerate() {
                let satisfied = (self.total_instances - self.violations[ci]) as f64;
                if satisfied / self.total_instances as f64 + 1e-12 < check.min_fraction {
                    return Err(check.spec_index);
                }
            }
        }
        Ok(())
    }
}

/// Evaluates one instance expression; `None` means "no values to aggregate"
/// (vacuously satisfied).
pub(crate) fn eval_expr(expr: &InstExpr, trace: &Trace, inst: &GroupInstance) -> Option<f64> {
    let events = trace.events();
    match expr {
        InstExpr::Count => Some(inst.len() as f64),
        InstExpr::CountClass(c) => {
            Some(inst.positions().iter().filter(|&&p| events[p as usize].class() == *c).count()
                as f64)
        }
        InstExpr::Distinct(key) => {
            let mut seen = HashSet::new();
            for &p in inst.positions() {
                if let Some(v) = events[p as usize].attribute(*key) {
                    seen.insert(v.distinct_key());
                }
            }
            Some(seen.len() as f64)
        }
        InstExpr::Sum(key) => {
            let mut sum = 0.0;
            let mut any = false;
            for &p in inst.positions() {
                if let Some(v) = events[p as usize].attribute(*key).and_then(|v| v.as_f64()) {
                    sum += v;
                    any = true;
                }
            }
            any.then_some(sum)
        }
        InstExpr::Avg(key) => {
            let mut sum = 0.0;
            let mut n = 0usize;
            for &p in inst.positions() {
                if let Some(v) = events[p as usize].attribute(*key).and_then(|v| v.as_f64()) {
                    sum += v;
                    n += 1;
                }
            }
            (n > 0).then(|| sum / n as f64)
        }
        InstExpr::Min(key) => inst
            .positions()
            .iter()
            .filter_map(|&p| events[p as usize].attribute(*key).and_then(|v| v.as_f64()))
            .fold(None, |acc: Option<f64>, v| Some(acc.map_or(v, |a| a.min(v)))),
        InstExpr::Max(key) => inst
            .positions()
            .iter()
            .filter_map(|&p| events[p as usize].attribute(*key).and_then(|v| v.as_f64()))
            .fold(None, |acc: Option<f64>, v| Some(acc.map_or(v, |a| a.max(v)))),
        InstExpr::Span(key) => {
            let mut first = None;
            let mut last = None;
            for &p in inst.positions() {
                if let Some(v) = events[p as usize].attribute(*key).and_then(|v| v.as_f64()) {
                    if first.is_none() {
                        first = Some(v);
                    }
                    last = Some(v);
                }
            }
            match (first, last) {
                (Some(f), Some(l)) => Some(l - f),
                _ => None,
            }
        }
        InstExpr::MaxGap(key) => {
            let mut prev: Option<f64> = None;
            let mut max_gap: Option<f64> = None;
            for &p in inst.positions() {
                if let Some(v) = events[p as usize].attribute(*key).and_then(|v| v.as_f64()) {
                    if let Some(pv) = prev {
                        let gap = v - pv;
                        max_gap = Some(max_gap.map_or(gap, |g| g.max(gap)));
                    }
                    prev = Some(v);
                }
            }
            max_gap
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecco_eventlog::LogBuilder;

    /// Builds the paper's running example with roles and simple durations.
    fn running_example() -> EventLog {
        let role_of = |c: &str| match c {
            "acc" | "rej" => "manager",
            _ => "clerk",
        };
        let mut b = LogBuilder::new();
        let traces: &[&[&str]] = &[
            &["rcp", "ckc", "acc", "prio", "inf", "arv"],
            &["rcp", "ckt", "rej", "prio", "arv", "inf"],
            &["rcp", "ckc", "acc", "inf", "arv"],
            &["rcp", "ckc", "rej", "rcp", "ckt", "acc", "prio", "arv", "inf"],
        ];
        for (i, t) in traces.iter().enumerate() {
            let mut tb = b.trace(&format!("σ{}", i + 1));
            for (j, cls) in t.iter().enumerate() {
                tb = tb
                    .event_with(cls, |e| {
                        e.str("org:role", role_of(cls))
                            .timestamp(
                                "time:timestamp",
                                (i as i64) * 1_000_000 + (j as i64) * 60_000,
                            )
                            .float("duration", 10.0 + j as f64)
                            .int("cost", 100 * (j as i64 + 1));
                    })
                    .unwrap();
            }
            tb.done();
        }
        b.build()
    }

    fn group(log: &EventLog, names: &[&str]) -> ClassSet {
        names.iter().map(|n| log.class_by_name(n).unwrap()).collect()
    }

    fn compile(log: &EventLog, dsl: &str) -> CompiledConstraintSet {
        CompiledConstraintSet::compile(&ConstraintSet::parse(dsl).unwrap(), log).unwrap()
    }

    #[test]
    fn role_constraint_separates_clerk_and_manager() {
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        let cs = compile(&log, "distinct(instance, \"org:role\") <= 1;");
        assert!(cs.holds(&group(&log, &["rcp", "ckc", "ckt"]), &ctx));
        assert!(cs.holds(&group(&log, &["acc"]), &ctx));
        assert!(!cs.holds(&group(&log, &["ckc", "acc"]), &ctx), "mixes clerk and manager");
    }

    #[test]
    fn size_and_links() {
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        let cs = compile(
            &log,
            "size(g) <= 2; cannot_link(\"rcp\", \"acc\"); must_link(\"inf\", \"arv\");",
        );
        assert!(cs.check_class(&group(&log, &["rcp", "ckc"]), &ctx).is_ok());
        // size violation
        assert_eq!(cs.check_class(&group(&log, &["rcp", "ckc", "ckt"]), &ctx), Err(0));
        // cannot-link violation
        assert_eq!(cs.check_class(&group(&log, &["rcp", "acc"]), &ctx), Err(1));
        // must-link violation: inf without arv
        assert_eq!(cs.check_class(&group(&log, &["inf", "prio"]), &ctx), Err(2));
        // both inf and arv: fine
        assert!(cs.check_class(&group(&log, &["inf", "arv"]), &ctx).is_ok());
    }

    #[test]
    fn grouping_bounds() {
        let log = running_example();
        let cs = compile(&log, "groups <= 4; groups >= 2;");
        assert_eq!(cs.group_count_bounds(), (Some(2), Some(4)));
        assert!(cs.group_count_ok(3));
        assert!(!cs.group_count_ok(1));
        assert!(!cs.group_count_ok(5));
        let cs = compile(&log, "groups == 4;");
        assert_eq!(cs.group_count_bounds(), (Some(4), Some(4)));
        assert!(cs.group_count_ok(4));
        assert!(!cs.group_count_ok(3));
    }

    #[test]
    fn instance_aggregates() {
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        // duration = 10 + position. Every instance of {rcp, ckc} contains at
        // least rcp (duration ≥ 10), so sum ≥ 10 holds; σ2's instance is just
        // ⟨rcp⟩ with duration exactly 10, so sum ≥ 11 fails.
        let cs = compile(&log, "sum(\"duration\") >= 10;");
        assert!(cs.holds(&group(&log, &["rcp", "ckc"]), &ctx));
        let cs = compile(&log, "sum(\"duration\") >= 11;");
        assert!(!cs.holds(&group(&log, &["rcp", "ckc"]), &ctx));
        // cost = 100·(position+1): rcp instances cost 100 except σ4's
        // restart at position 3 (cost 400); arv always occurs at position ≥ 4.
        let cs = compile(&log, "avg(\"cost\") <= 400;");
        assert!(cs.holds(&group(&log, &["rcp"]), &ctx));
        assert!(!cs.holds(&group(&log, &["arv"]), &ctx), "arv occurs late, cost high");
    }

    #[test]
    fn span_and_gap_use_timestamps() {
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        // Events are 60s apart; instance ⟨rcp,ckc⟩ spans 60_000ms.
        let cs = compile(&log, "span(\"time:timestamp\") <= 60000;");
        assert!(cs.holds(&group(&log, &["rcp", "ckc"]), &ctx));
        // {rcp, arv}: spans nearly the whole trace — violated.
        assert!(!cs.holds(&group(&log, &["rcp", "arv"]), &ctx));
        let cs = compile(&log, "gap(\"time:timestamp\") <= 60000;");
        assert!(cs.holds(&group(&log, &["rcp", "ckc"]), &ctx));
        assert!(!cs.holds(&group(&log, &["rcp", "prio"]), &ctx));
    }

    #[test]
    fn count_class_cardinality() {
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        // With RepeatSplit every instance has at most 1 event per class.
        let cs = compile(&log, "count(instance, \"rcp\") <= 1;");
        assert!(cs.holds(&group(&log, &["rcp", "ckc", "ckt"]), &ctx));
        // NoSplit: σ4's single instance contains rcp twice.
        let spec = ConstraintSet::parse("count(instance, \"rcp\") <= 1;").unwrap();
        let cs = CompiledConstraintSet::compile_with(&spec, &log, Segmenter::NoSplit).unwrap();
        assert!(!cs.holds(&group(&log, &["rcp", "ckc", "ckt"]), &ctx));
    }

    #[test]
    fn loose_constraints_tolerate_a_fraction() {
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        // Group {prio}: 3 instances (σ1, σ2, σ4), each cost depends on position.
        // σ1: prio at pos 3 → cost 400; σ2: pos 3 → 400; σ4: pos 6 → 700.
        let strict = compile(&log, "sum(\"cost\") <= 400;");
        assert!(!strict.holds(&group(&log, &["prio"]), &ctx));
        let loose = compile(&log, "atleast 0.6 of instances: sum(\"cost\") <= 400;");
        assert!(loose.holds(&group(&log, &["prio"]), &ctx), "2/3 instances satisfy");
        let too_tight = compile(&log, "atleast 0.7 of instances: sum(\"cost\") <= 400;");
        assert!(!too_tight.holds(&group(&log, &["prio"]), &ctx));
    }

    #[test]
    fn class_scope_distinct_requires_class_attributes() {
        let mut b = LogBuilder::new();
        b.class_attr_str("a", "system", "X").unwrap();
        b.class_attr_str("b", "system", "X").unwrap();
        b.class_attr_str("c", "system", "Y").unwrap();
        b.trace("t").event("a").unwrap().event("b").unwrap().event("c").unwrap().done();
        let log = b.build();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        let cs = compile(&log, "distinct(class, \"system\") <= 1;");
        assert!(cs.holds(&group(&log, &["a", "b"]), &ctx));
        assert!(!cs.holds(&group(&log, &["a", "c"]), &ctx));
        // A log without the attribute on all classes: compile error.
        let mut b2 = LogBuilder::new();
        b2.class_attr_str("a", "system", "X").unwrap();
        b2.trace("t").event("a").unwrap().event("b").unwrap().done();
        let log2 = b2.build();
        let spec = ConstraintSet::parse("distinct(class, \"system\") <= 1;").unwrap();
        assert!(matches!(
            CompiledConstraintSet::compile(&spec, &log2),
            Err(CompileError::MissingClassAttribute { .. })
        ));
    }

    #[test]
    fn unknown_names_fail_compilation() {
        let log = running_example();
        let spec = ConstraintSet::parse("sum(\"nonexistent\") <= 1;").unwrap();
        assert_eq!(
            CompiledConstraintSet::compile(&spec, &log).unwrap_err(),
            CompileError::UnknownAttribute("nonexistent".into())
        );
        let spec = ConstraintSet::parse("cannot_link(\"zzz\", \"rcp\");").unwrap();
        assert_eq!(
            CompiledConstraintSet::compile(&spec, &log).unwrap_err(),
            CompileError::UnknownClass("zzz".into())
        );
    }

    #[test]
    fn mode_derivation_matches_paper() {
        let log = running_example();
        assert_eq!(compile(&log, "size(g) <= 8;").mode(), CheckingMode::AntiMonotonic);
        assert_eq!(compile(&log, "size(g) >= 2;").mode(), CheckingMode::Monotonic);
        assert_eq!(
            compile(&log, "size(g) >= 2; avg(\"cost\") <= 100;").mode(),
            CheckingMode::NonMonotonic
        );
        assert_eq!(
            compile(&log, "size(g) <= 8; avg(\"cost\") <= 100;").mode(),
            CheckingMode::AntiMonotonic
        );
        // Grouping constraints are excluded from the mode (R \ R_G).
        assert_eq!(compile(&log, "groups <= 3;").mode(), CheckingMode::Monotonic);
    }

    #[test]
    fn anti_monotonic_gate_ignores_other_constraints() {
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        let cs = compile(&log, "size(g) <= 2; size(g) >= 2;");
        let singleton = group(&log, &["rcp"]);
        // Violates the monotonic (>= 2) constraint but not the anti-monotonic one.
        assert!(!cs.holds(&singleton, &ctx));
        assert!(cs.holds_anti_monotonic(&singleton, &ctx));
        let triple = group(&log, &["rcp", "ckc", "ckt"]);
        assert!(!cs.holds_anti_monotonic(&triple, &ctx));
    }

    #[test]
    fn indexed_checks_match_scan_oracle() {
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        let sets = [
            "sum(\"duration\") >= 11;",
            "span(\"time:timestamp\") <= 60000;",
            "atleast 0.6 of instances: sum(\"cost\") <= 400;",
            "count(instance, \"rcp\") <= 1; size(g) <= 2;",
            "distinct(instance, \"org:role\") <= 1;",
        ];
        let ids: Vec<ClassId> = log.classes().ids().collect();
        for dsl in sets {
            let cs = compile(&log, dsl);
            for mask in 1u32..(1 << ids.len()) {
                let g: ClassSet = ids
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, c)| *c)
                    .collect();
                assert_eq!(cs.holds(&g, &ctx), cs.holds_scan(&g, &log), "{dsl} on {g:?}");
                assert_eq!(
                    cs.check_instances(&g, &ctx),
                    cs.check_instances_scan(&g, &log),
                    "{dsl} on {g:?}"
                );
            }
        }
    }

    #[test]
    fn shared_cache_reuses_instances_and_verdicts() {
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let cache = gecco_eventlog::InstanceCache::new();
        let ctx = EvalContext::with_cache(&log, &index, &cache);
        let cs1 = compile(&log, "sum(\"duration\") >= 11;");
        let cs2 = compile(&log, "avg(\"cost\") <= 400;");
        assert_ne!(cs1.signature(), cs2.signature());
        let g = group(&log, &["rcp", "ckc"]);
        // First set materializes the instances; the second reuses them.
        let v1 = cs1.holds(&g, &ctx);
        let stats = cache.stats();
        assert_eq!(stats.instance_entries, 1);
        let v2 = cs2.holds(&g, &ctx);
        let stats = cache.stats();
        assert_eq!(stats.instance_entries, 1, "instances shared across constraint sets");
        assert!(stats.instance_hits >= 1);
        // Verdicts are per-set: re-asking either set hits the verdict cache
        // and returns the stored (correct) answer.
        let before = cache.stats().verdict_hits;
        assert_eq!(cs1.holds(&g, &ctx), v1);
        assert_eq!(cs2.holds(&g, &ctx), v2);
        assert_eq!(cache.stats().verdict_hits, before + 2);
        assert_eq!(v1, cs1.holds_scan(&g, &log));
        assert_eq!(v2, cs2.holds_scan(&g, &log));
    }

    #[test]
    fn vacuous_traces_do_not_count() {
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        // {prio} never occurs in σ3; constraint still evaluable.
        let cs = compile(&log, "count(instance) >= 1;");
        assert!(cs.holds(&group(&log, &["prio"]), &ctx));
    }

    #[test]
    fn monotonicity_soundness_on_running_example() {
        // For every anti-monotonic constraint: holds(g) implies holds(g')
        // for g' ⊂ g — checked over all pairs of nested groups up to size 3.
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        let cs = compile(&log, "span(\"time:timestamp\") <= 120000; size(g) <= 2;");
        let ids: Vec<ClassId> = log.classes().ids().collect();
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                let pair: ClassSet = [ids[i], ids[j]].into_iter().collect();
                if !log.occurs(&pair) {
                    continue;
                }
                if cs.holds_anti_monotonic(&pair, &ctx) {
                    assert!(
                        cs.holds_anti_monotonic(&ClassSet::singleton(ids[i]), &ctx),
                        "anti-monotonicity violated for subset"
                    );
                    assert!(cs.holds_anti_monotonic(&ClassSet::singleton(ids[j]), &ctx));
                }
            }
        }
    }
}
