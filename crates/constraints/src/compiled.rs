//! Constraint compilation and evaluation against a concrete log.
//!
//! The `holds` predicate of §IV-A: class-based constraints are checked
//! before instance-based ones because the former need no pass over the log
//! (§V-B "we check constraints in R_C before ones in R_I, … minimizing the
//! validation cost per candidate").

use crate::monotonicity::{checking_mode, CheckingMode, Monotonicity};
use crate::spec::{ClassExpr, Cmp, Constraint, ConstraintSet, InstanceExpr};
use gecco_eventlog::{
    instances, ClassId, ClassSet, EventLog, GroupInstance, Segmenter, Symbol, Trace,
};
use std::collections::HashSet;
use std::fmt;

/// Error raised when a specification does not fit the log.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The named attribute never occurs in the log.
    UnknownAttribute(String),
    /// The named event class does not occur in the log.
    UnknownClass(String),
    /// A class-scope `distinct` constraint references an attribute that
    /// some class lacks — the constraint is inapplicable to this log
    /// (cf. the paper's footnote: `BL3` applies to 4 of 13 logs only).
    MissingClassAttribute {
        /// The attribute name.
        attribute: String,
        /// A class without it.
        class: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnknownAttribute(a) => write!(f, "unknown attribute {a:?}"),
            CompileError::UnknownClass(c) => write!(f, "unknown event class {c:?}"),
            CompileError::MissingClassAttribute { attribute, class } => {
                write!(f, "class {class:?} lacks class-level attribute {attribute:?}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// A class-based constraint compiled to interned ids.
#[derive(Debug, Clone)]
pub(crate) enum ClassCheck {
    Size { cmp: Cmp, bound: f64 },
    DistinctAttr { key: Symbol, cmp: Cmp, bound: f64 },
    CannotLink(ClassId, ClassId),
    MustLink(ClassId, ClassId),
}

/// An instance-based expression compiled to interned ids.
#[derive(Debug, Clone)]
pub(crate) enum InstExpr {
    Count,
    CountClass(ClassId),
    Distinct(Symbol),
    Sum(Symbol),
    Avg(Symbol),
    Min(Symbol),
    Max(Symbol),
    Span(Symbol),
    MaxGap(Symbol),
}

#[derive(Debug, Clone)]
pub(crate) struct InstCheck {
    pub(crate) expr: InstExpr,
    pub(crate) cmp: Cmp,
    pub(crate) bound: f64,
    pub(crate) min_fraction: f64,
    pub(crate) monotonicity: Monotonicity,
    pub(crate) spec_index: usize,
}

/// A [`ConstraintSet`] compiled against one log, ready for evaluation.
#[derive(Debug, Clone)]
pub struct CompiledConstraintSet {
    spec: ConstraintSet,
    pub(crate) class_checks: Vec<(usize, ClassCheck, Monotonicity)>,
    pub(crate) inst_checks: Vec<InstCheck>,
    group_min: Option<u32>,
    group_max: Option<u32>,
    mode: CheckingMode,
    segmenter: Segmenter,
}

impl CompiledConstraintSet {
    /// Compiles `spec` against `log` using the default
    /// [`Segmenter::RepeatSplit`].
    pub fn compile(spec: &ConstraintSet, log: &EventLog) -> Result<Self, CompileError> {
        Self::compile_with(spec, log, Segmenter::RepeatSplit)
    }

    /// Compiles with an explicit instance segmenter.
    pub fn compile_with(
        spec: &ConstraintSet,
        log: &EventLog,
        segmenter: Segmenter,
    ) -> Result<Self, CompileError> {
        let mut class_checks = Vec::new();
        let mut inst_checks = Vec::new();
        let mut group_min: Option<u32> = None;
        let mut group_max: Option<u32> = None;

        let lookup_attr = |name: &str| {
            log.key(name).ok_or_else(|| CompileError::UnknownAttribute(name.to_string()))
        };
        let lookup_class = |name: &str| {
            log.class_by_name(name).ok_or_else(|| CompileError::UnknownClass(name.to_string()))
        };

        for (i, c) in spec.constraints().iter().enumerate() {
            let mono = c.monotonicity();
            match c {
                Constraint::GroupCount { cmp, bound } => match cmp {
                    Cmp::Le => group_max = Some(group_max.map_or(*bound, |b| b.min(*bound))),
                    Cmp::Ge => group_min = Some(group_min.map_or(*bound, |b| b.max(*bound))),
                    Cmp::Eq => {
                        group_min = Some(group_min.map_or(*bound, |b| b.max(*bound)));
                        group_max = Some(group_max.map_or(*bound, |b| b.min(*bound)));
                    }
                },
                Constraint::ClassBound { expr, cmp, bound } => {
                    let check = match expr {
                        ClassExpr::Size => ClassCheck::Size { cmp: *cmp, bound: *bound },
                        ClassExpr::DistinctAttr(attr) => {
                            let key = lookup_attr(attr)?;
                            // Every class must carry the attribute; otherwise
                            // the constraint is inapplicable to this log.
                            for id in log.classes().ids() {
                                if log.classes().info(id).attribute(key).is_none() {
                                    return Err(CompileError::MissingClassAttribute {
                                        attribute: attr.clone(),
                                        class: log.class_name(id).to_string(),
                                    });
                                }
                            }
                            ClassCheck::DistinctAttr { key, cmp: *cmp, bound: *bound }
                        }
                    };
                    class_checks.push((i, check, mono));
                }
                Constraint::CannotLink { a, b } => {
                    class_checks.push((
                        i,
                        ClassCheck::CannotLink(lookup_class(a)?, lookup_class(b)?),
                        mono,
                    ));
                }
                Constraint::MustLink { a, b } => {
                    class_checks.push((
                        i,
                        ClassCheck::MustLink(lookup_class(a)?, lookup_class(b)?),
                        mono,
                    ));
                }
                Constraint::InstanceBound { expr, cmp, bound, min_fraction } => {
                    let compiled = match expr {
                        InstanceExpr::Count => InstExpr::Count,
                        InstanceExpr::CountClass(c) => InstExpr::CountClass(lookup_class(c)?),
                        InstanceExpr::Distinct(a) => InstExpr::Distinct(lookup_attr(a)?),
                        InstanceExpr::Sum(a) => InstExpr::Sum(lookup_attr(a)?),
                        InstanceExpr::Avg(a) => InstExpr::Avg(lookup_attr(a)?),
                        InstanceExpr::Min(a) => InstExpr::Min(lookup_attr(a)?),
                        InstanceExpr::Max(a) => InstExpr::Max(lookup_attr(a)?),
                        InstanceExpr::Span(a) => InstExpr::Span(lookup_attr(a)?),
                        InstanceExpr::MaxGap(a) => InstExpr::MaxGap(lookup_attr(a)?),
                    };
                    inst_checks.push(InstCheck {
                        expr: compiled,
                        cmp: *cmp,
                        bound: *bound,
                        min_fraction: *min_fraction,
                        monotonicity: mono,
                        spec_index: i,
                    });
                }
            }
        }
        let mode = checking_mode(
            class_checks
                .iter()
                .map(|(_, _, m)| *m)
                .chain(inst_checks.iter().map(|c| c.monotonicity)),
        );
        Ok(CompiledConstraintSet {
            spec: spec.clone(),
            class_checks,
            inst_checks,
            group_min,
            group_max,
            mode,
            segmenter,
        })
    }

    /// The original specification.
    pub fn spec(&self) -> &ConstraintSet {
        &self.spec
    }

    /// The constraint-checking mode derived from `R \ R_G`
    /// (`setCheckingMode(R)`, Algorithm 1 line 1).
    pub fn mode(&self) -> CheckingMode {
        self.mode
    }

    /// The instance segmenter used for `R_I` evaluation.
    pub fn segmenter(&self) -> Segmenter {
        self.segmenter
    }

    /// Effective bounds on the number of groups `(min, max)` from `R_G`.
    pub fn group_count_bounds(&self) -> (Option<u32>, Option<u32>) {
        (self.group_min, self.group_max)
    }

    /// Whether a grouping of `k` groups satisfies `R_G`.
    pub fn group_count_ok(&self, k: usize) -> bool {
        self.group_min.is_none_or(|m| k >= m as usize)
            && self.group_max.is_none_or(|m| k <= m as usize)
    }

    /// Whether any instance-based constraints exist (they require a pass
    /// over the log per candidate).
    pub fn has_instance_constraints(&self) -> bool {
        !self.inst_checks.is_empty()
    }

    /// Checks `R_C` for one group; returns the spec index of the first
    /// violated constraint.
    pub fn check_class(&self, group: &ClassSet, log: &EventLog) -> Result<(), usize> {
        self.check_class_filtered(group, log, |_| true)
    }

    fn check_class_filtered(
        &self,
        group: &ClassSet,
        log: &EventLog,
        filter: impl Fn(Monotonicity) -> bool,
    ) -> Result<(), usize> {
        for (spec_index, check, mono) in &self.class_checks {
            if !filter(*mono) {
                continue;
            }
            let ok = match check {
                ClassCheck::Size { cmp, bound } => cmp.eval(group.len() as f64, *bound),
                ClassCheck::DistinctAttr { key, cmp, bound } => {
                    let mut seen = HashSet::new();
                    for c in group.iter() {
                        if let Some(v) = log.classes().info(c).attribute(*key) {
                            seen.insert(v.distinct_key());
                        }
                    }
                    cmp.eval(seen.len() as f64, *bound)
                }
                ClassCheck::CannotLink(a, b) => !(group.contains(*a) && group.contains(*b)),
                ClassCheck::MustLink(a, b) => group.contains(*a) == group.contains(*b),
            };
            if !ok {
                return Err(*spec_index);
            }
        }
        Ok(())
    }

    /// Checks `R_I` for one group over the whole log; returns the spec index
    /// of the first violated constraint.
    pub fn check_instances(&self, group: &ClassSet, log: &EventLog) -> Result<(), usize> {
        self.check_instances_filtered(group, log, |_| true)
    }

    fn check_instances_filtered(
        &self,
        group: &ClassSet,
        log: &EventLog,
        filter: impl Fn(Monotonicity) -> bool,
    ) -> Result<(), usize> {
        let active: Vec<&InstCheck> =
            self.inst_checks.iter().filter(|c| filter(c.monotonicity)).collect();
        if active.is_empty() {
            return Ok(());
        }
        let all_strict = active.iter().all(|c| c.min_fraction >= 1.0);
        let mut total_instances = 0usize;
        let mut violations = vec![0usize; active.len()];
        for (ti, trace) in log.traces().iter().enumerate() {
            if !log.trace_class_sets()[ti].intersects(group) {
                continue; // vacuously satisfied for this trace
            }
            for inst in instances(trace, group, self.segmenter) {
                total_instances += 1;
                for (ci, check) in active.iter().enumerate() {
                    let ok = match eval_expr(&check.expr, trace, &inst) {
                        Some(v) => check.cmp.eval(v, check.bound),
                        None => true, // vacuous: no values to aggregate
                    };
                    if !ok {
                        if all_strict {
                            return Err(check.spec_index);
                        }
                        violations[ci] += 1;
                    }
                }
            }
        }
        if !all_strict && total_instances > 0 {
            for (ci, check) in active.iter().enumerate() {
                let satisfied = (total_instances - violations[ci]) as f64;
                if satisfied / total_instances as f64 + 1e-12 < check.min_fraction {
                    return Err(check.spec_index);
                }
            }
        }
        Ok(())
    }

    /// The full per-group `holds` predicate: `R_C` first, then `R_I`.
    pub fn holds(&self, group: &ClassSet, log: &EventLog) -> bool {
        self.check_class(group, log).is_ok() && self.check_instances(group, log).is_ok()
    }

    /// Like [`Self::holds`], but reports the violated spec index.
    pub fn holds_detailed(&self, group: &ClassSet, log: &EventLog) -> Result<(), usize> {
        self.check_class(group, log)?;
        self.check_instances(group, log)
    }

    /// Checks only the **anti-monotonic** subset of the constraints. Used
    /// as the expansion gate in anti-monotonic checking mode: a group that
    /// fails any anti-monotonic constraint can never be repaired by growing
    /// it, while failures of monotonic/non-monotonic constraints can.
    pub fn holds_anti_monotonic(&self, group: &ClassSet, log: &EventLog) -> bool {
        let anti = |m: Monotonicity| m == Monotonicity::AntiMonotonic;
        self.check_class_filtered(group, log, anti).is_ok()
            && self.check_instances_filtered(group, log, anti).is_ok()
    }

    /// All must-link pairs (needed by baselines that merge rather than
    /// search).
    pub fn must_link_pairs(&self) -> Vec<(ClassId, ClassId)> {
        self.class_checks
            .iter()
            .filter_map(|(_, c, _)| match c {
                ClassCheck::MustLink(a, b) => Some((*a, *b)),
                _ => None,
            })
            .collect()
    }
}

/// Evaluates one instance expression; `None` means "no values to aggregate"
/// (vacuously satisfied).
pub(crate) fn eval_expr(expr: &InstExpr, trace: &Trace, inst: &GroupInstance) -> Option<f64> {
    let events = trace.events();
    match expr {
        InstExpr::Count => Some(inst.len() as f64),
        InstExpr::CountClass(c) => {
            Some(inst.positions().iter().filter(|&&p| events[p as usize].class() == *c).count()
                as f64)
        }
        InstExpr::Distinct(key) => {
            let mut seen = HashSet::new();
            for &p in inst.positions() {
                if let Some(v) = events[p as usize].attribute(*key) {
                    seen.insert(v.distinct_key());
                }
            }
            Some(seen.len() as f64)
        }
        InstExpr::Sum(key) => {
            let mut sum = 0.0;
            let mut any = false;
            for &p in inst.positions() {
                if let Some(v) = events[p as usize].attribute(*key).and_then(|v| v.as_f64()) {
                    sum += v;
                    any = true;
                }
            }
            any.then_some(sum)
        }
        InstExpr::Avg(key) => {
            let mut sum = 0.0;
            let mut n = 0usize;
            for &p in inst.positions() {
                if let Some(v) = events[p as usize].attribute(*key).and_then(|v| v.as_f64()) {
                    sum += v;
                    n += 1;
                }
            }
            (n > 0).then(|| sum / n as f64)
        }
        InstExpr::Min(key) => inst
            .positions()
            .iter()
            .filter_map(|&p| events[p as usize].attribute(*key).and_then(|v| v.as_f64()))
            .fold(None, |acc: Option<f64>, v| Some(acc.map_or(v, |a| a.min(v)))),
        InstExpr::Max(key) => inst
            .positions()
            .iter()
            .filter_map(|&p| events[p as usize].attribute(*key).and_then(|v| v.as_f64()))
            .fold(None, |acc: Option<f64>, v| Some(acc.map_or(v, |a| a.max(v)))),
        InstExpr::Span(key) => {
            let mut first = None;
            let mut last = None;
            for &p in inst.positions() {
                if let Some(v) = events[p as usize].attribute(*key).and_then(|v| v.as_f64()) {
                    if first.is_none() {
                        first = Some(v);
                    }
                    last = Some(v);
                }
            }
            match (first, last) {
                (Some(f), Some(l)) => Some(l - f),
                _ => None,
            }
        }
        InstExpr::MaxGap(key) => {
            let mut prev: Option<f64> = None;
            let mut max_gap: Option<f64> = None;
            for &p in inst.positions() {
                if let Some(v) = events[p as usize].attribute(*key).and_then(|v| v.as_f64()) {
                    if let Some(pv) = prev {
                        let gap = v - pv;
                        max_gap = Some(max_gap.map_or(gap, |g| g.max(gap)));
                    }
                    prev = Some(v);
                }
            }
            max_gap
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecco_eventlog::LogBuilder;

    /// Builds the paper's running example with roles and simple durations.
    fn running_example() -> EventLog {
        let role_of = |c: &str| match c {
            "acc" | "rej" => "manager",
            _ => "clerk",
        };
        let mut b = LogBuilder::new();
        let traces: &[&[&str]] = &[
            &["rcp", "ckc", "acc", "prio", "inf", "arv"],
            &["rcp", "ckt", "rej", "prio", "arv", "inf"],
            &["rcp", "ckc", "acc", "inf", "arv"],
            &["rcp", "ckc", "rej", "rcp", "ckt", "acc", "prio", "arv", "inf"],
        ];
        for (i, t) in traces.iter().enumerate() {
            let mut tb = b.trace(&format!("σ{}", i + 1));
            for (j, cls) in t.iter().enumerate() {
                tb = tb
                    .event_with(cls, |e| {
                        e.str("org:role", role_of(cls))
                            .timestamp(
                                "time:timestamp",
                                (i as i64) * 1_000_000 + (j as i64) * 60_000,
                            )
                            .float("duration", 10.0 + j as f64)
                            .int("cost", 100 * (j as i64 + 1));
                    })
                    .unwrap();
            }
            tb.done();
        }
        b.build()
    }

    fn group(log: &EventLog, names: &[&str]) -> ClassSet {
        names.iter().map(|n| log.class_by_name(n).unwrap()).collect()
    }

    fn compile(log: &EventLog, dsl: &str) -> CompiledConstraintSet {
        CompiledConstraintSet::compile(&ConstraintSet::parse(dsl).unwrap(), log).unwrap()
    }

    #[test]
    fn role_constraint_separates_clerk_and_manager() {
        let log = running_example();
        let cs = compile(&log, "distinct(instance, \"org:role\") <= 1;");
        assert!(cs.holds(&group(&log, &["rcp", "ckc", "ckt"]), &log));
        assert!(cs.holds(&group(&log, &["acc"]), &log));
        assert!(!cs.holds(&group(&log, &["ckc", "acc"]), &log), "mixes clerk and manager");
    }

    #[test]
    fn size_and_links() {
        let log = running_example();
        let cs = compile(
            &log,
            "size(g) <= 2; cannot_link(\"rcp\", \"acc\"); must_link(\"inf\", \"arv\");",
        );
        assert!(cs.check_class(&group(&log, &["rcp", "ckc"]), &log).is_ok());
        // size violation
        assert_eq!(cs.check_class(&group(&log, &["rcp", "ckc", "ckt"]), &log), Err(0));
        // cannot-link violation
        assert_eq!(cs.check_class(&group(&log, &["rcp", "acc"]), &log), Err(1));
        // must-link violation: inf without arv
        assert_eq!(cs.check_class(&group(&log, &["inf", "prio"]), &log), Err(2));
        // both inf and arv: fine
        assert!(cs.check_class(&group(&log, &["inf", "arv"]), &log).is_ok());
    }

    #[test]
    fn grouping_bounds() {
        let log = running_example();
        let cs = compile(&log, "groups <= 4; groups >= 2;");
        assert_eq!(cs.group_count_bounds(), (Some(2), Some(4)));
        assert!(cs.group_count_ok(3));
        assert!(!cs.group_count_ok(1));
        assert!(!cs.group_count_ok(5));
        let cs = compile(&log, "groups == 4;");
        assert_eq!(cs.group_count_bounds(), (Some(4), Some(4)));
        assert!(cs.group_count_ok(4));
        assert!(!cs.group_count_ok(3));
    }

    #[test]
    fn instance_aggregates() {
        let log = running_example();
        // duration = 10 + position. Every instance of {rcp, ckc} contains at
        // least rcp (duration ≥ 10), so sum ≥ 10 holds; σ2's instance is just
        // ⟨rcp⟩ with duration exactly 10, so sum ≥ 11 fails.
        let cs = compile(&log, "sum(\"duration\") >= 10;");
        assert!(cs.holds(&group(&log, &["rcp", "ckc"]), &log));
        let cs = compile(&log, "sum(\"duration\") >= 11;");
        assert!(!cs.holds(&group(&log, &["rcp", "ckc"]), &log));
        // cost = 100·(position+1): rcp instances cost 100 except σ4's
        // restart at position 3 (cost 400); arv always occurs at position ≥ 4.
        let cs = compile(&log, "avg(\"cost\") <= 400;");
        assert!(cs.holds(&group(&log, &["rcp"]), &log));
        assert!(!cs.holds(&group(&log, &["arv"]), &log), "arv occurs late, cost high");
    }

    #[test]
    fn span_and_gap_use_timestamps() {
        let log = running_example();
        // Events are 60s apart; instance ⟨rcp,ckc⟩ spans 60_000ms.
        let cs = compile(&log, "span(\"time:timestamp\") <= 60000;");
        assert!(cs.holds(&group(&log, &["rcp", "ckc"]), &log));
        // {rcp, arv}: spans nearly the whole trace — violated.
        assert!(!cs.holds(&group(&log, &["rcp", "arv"]), &log));
        let cs = compile(&log, "gap(\"time:timestamp\") <= 60000;");
        assert!(cs.holds(&group(&log, &["rcp", "ckc"]), &log));
        assert!(!cs.holds(&group(&log, &["rcp", "prio"]), &log));
    }

    #[test]
    fn count_class_cardinality() {
        let log = running_example();
        // With RepeatSplit every instance has at most 1 event per class.
        let cs = compile(&log, "count(instance, \"rcp\") <= 1;");
        assert!(cs.holds(&group(&log, &["rcp", "ckc", "ckt"]), &log));
        // NoSplit: σ4's single instance contains rcp twice.
        let spec = ConstraintSet::parse("count(instance, \"rcp\") <= 1;").unwrap();
        let cs = CompiledConstraintSet::compile_with(&spec, &log, Segmenter::NoSplit).unwrap();
        assert!(!cs.holds(&group(&log, &["rcp", "ckc", "ckt"]), &log));
    }

    #[test]
    fn loose_constraints_tolerate_a_fraction() {
        let log = running_example();
        // Group {prio}: 3 instances (σ1, σ2, σ4), each cost depends on position.
        // σ1: prio at pos 3 → cost 400; σ2: pos 3 → 400; σ4: pos 6 → 700.
        let strict = compile(&log, "sum(\"cost\") <= 400;");
        assert!(!strict.holds(&group(&log, &["prio"]), &log));
        let loose = compile(&log, "atleast 0.6 of instances: sum(\"cost\") <= 400;");
        assert!(loose.holds(&group(&log, &["prio"]), &log), "2/3 instances satisfy");
        let too_tight = compile(&log, "atleast 0.7 of instances: sum(\"cost\") <= 400;");
        assert!(!too_tight.holds(&group(&log, &["prio"]), &log));
    }

    #[test]
    fn class_scope_distinct_requires_class_attributes() {
        let mut b = LogBuilder::new();
        b.class_attr_str("a", "system", "X").unwrap();
        b.class_attr_str("b", "system", "X").unwrap();
        b.class_attr_str("c", "system", "Y").unwrap();
        b.trace("t").event("a").unwrap().event("b").unwrap().event("c").unwrap().done();
        let log = b.build();
        let cs = compile(&log, "distinct(class, \"system\") <= 1;");
        assert!(cs.holds(&group(&log, &["a", "b"]), &log));
        assert!(!cs.holds(&group(&log, &["a", "c"]), &log));
        // A log without the attribute on all classes: compile error.
        let mut b2 = LogBuilder::new();
        b2.class_attr_str("a", "system", "X").unwrap();
        b2.trace("t").event("a").unwrap().event("b").unwrap().done();
        let log2 = b2.build();
        let spec = ConstraintSet::parse("distinct(class, \"system\") <= 1;").unwrap();
        assert!(matches!(
            CompiledConstraintSet::compile(&spec, &log2),
            Err(CompileError::MissingClassAttribute { .. })
        ));
    }

    #[test]
    fn unknown_names_fail_compilation() {
        let log = running_example();
        let spec = ConstraintSet::parse("sum(\"nonexistent\") <= 1;").unwrap();
        assert_eq!(
            CompiledConstraintSet::compile(&spec, &log).unwrap_err(),
            CompileError::UnknownAttribute("nonexistent".into())
        );
        let spec = ConstraintSet::parse("cannot_link(\"zzz\", \"rcp\");").unwrap();
        assert_eq!(
            CompiledConstraintSet::compile(&spec, &log).unwrap_err(),
            CompileError::UnknownClass("zzz".into())
        );
    }

    #[test]
    fn mode_derivation_matches_paper() {
        let log = running_example();
        assert_eq!(compile(&log, "size(g) <= 8;").mode(), CheckingMode::AntiMonotonic);
        assert_eq!(compile(&log, "size(g) >= 2;").mode(), CheckingMode::Monotonic);
        assert_eq!(
            compile(&log, "size(g) >= 2; avg(\"cost\") <= 100;").mode(),
            CheckingMode::NonMonotonic
        );
        assert_eq!(
            compile(&log, "size(g) <= 8; avg(\"cost\") <= 100;").mode(),
            CheckingMode::AntiMonotonic
        );
        // Grouping constraints are excluded from the mode (R \ R_G).
        assert_eq!(compile(&log, "groups <= 3;").mode(), CheckingMode::Monotonic);
    }

    #[test]
    fn anti_monotonic_gate_ignores_other_constraints() {
        let log = running_example();
        let cs = compile(&log, "size(g) <= 2; size(g) >= 2;");
        let singleton = group(&log, &["rcp"]);
        // Violates the monotonic (>= 2) constraint but not the anti-monotonic one.
        assert!(!cs.holds(&singleton, &log));
        assert!(cs.holds_anti_monotonic(&singleton, &log));
        let triple = group(&log, &["rcp", "ckc", "ckt"]);
        assert!(!cs.holds_anti_monotonic(&triple, &log));
    }

    #[test]
    fn vacuous_traces_do_not_count() {
        let log = running_example();
        // {prio} never occurs in σ3; constraint still evaluable.
        let cs = compile(&log, "count(instance) >= 1;");
        assert!(cs.holds(&group(&log, &["prio"]), &log));
    }

    #[test]
    fn monotonicity_soundness_on_running_example() {
        // For every anti-monotonic constraint: holds(g) implies holds(g')
        // for g' ⊂ g — checked over all pairs of nested groups up to size 3.
        let log = running_example();
        let cs = compile(&log, "span(\"time:timestamp\") <= 120000; size(g) <= 2;");
        let ids: Vec<ClassId> = log.classes().ids().collect();
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                let pair: ClassSet = [ids[i], ids[j]].into_iter().collect();
                if !log.occurs(&pair) {
                    continue;
                }
                if cs.holds_anti_monotonic(&pair, &log) {
                    assert!(
                        cs.holds_anti_monotonic(&ClassSet::singleton(ids[i]), &log),
                        "anti-monotonicity violated for subset"
                    );
                    assert!(cs.holds_anti_monotonic(&ClassSet::singleton(ids[j]), &log));
                }
            }
        }
    }
}
