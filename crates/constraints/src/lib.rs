//! Constraints on event-log abstractions (GECCO §IV-A).
//!
//! GECCO lets users declare *what* the abstracted log must look like via
//! three constraint categories:
//!
//! * **grouping constraints** (`R_G`) bound the number of groups `|G|`;
//! * **class-based constraints** (`R_C`) restrict a single group's event
//!   classes (size bounds, cannot-/must-link, class-level attributes);
//! * **instance-based constraints** (`R_I`) must hold for every instance of
//!   a group in every trace (attribute aggregates, durations, cardinality),
//!   optionally loosened to a fraction of instances ("95% of instances…").
//!
//! Constraints are written either programmatically ([`Constraint`]) or in a
//! small textual [DSL](crate::dsl) ([`ConstraintSet::parse`]); both are
//! log-independent *specifications* that are compiled (see [`compiled`])
//! against a concrete [`gecco_eventlog::EventLog`] for evaluation. Each
//! constraint knows its [`Monotonicity`], which drives the pruning
//! strategies of the paper's Algorithms 1 and 2.

pub mod compiled;
pub mod diagnostics;
pub mod dsl;
pub mod monotonicity;
pub mod spec;
pub mod suggest;

pub use compiled::{CompileError, CompiledConstraintSet};
pub use diagnostics::{ConstraintReport, Diagnostics};
pub use monotonicity::{CheckingMode, Monotonicity};
pub use spec::{ClassExpr, Cmp, Constraint, ConstraintSet, InstanceExpr, ParseError, Scope};
pub use suggest::{suggest_constraints, Suggestion};
