//! A small textual constraint language.
//!
//! Statements are `;`-terminated; `#` starts a line comment. The grammar
//! mirrors the constraint examples of the paper's Tables II and IV:
//!
//! ```text
//! groups <= 10;                              # R_G: at most 10 groups
//! groups >= 3;                               # R_G: at least 3 groups
//! size(g) <= 8;                              # R_C: at most 8 classes per group
//! distinct(class, "system") <= 1;            # R_C: one originating system per group
//! cannot_link("rcp", "acc");                 # R_C
//! must_link("inf", "arv");                   # R_C
//! distinct(instance, "org:role") <= 3;       # R_I: constraint set A
//! sum("duration") >= 101;                    # R_I: constraint set M
//! avg("duration") <= 5e5;                    # R_I: constraint set N
//! span("time:timestamp") <= 3600000;         # R_I: instance duration <= 1h
//! gap("time:timestamp") <= 600000;           # R_I: gap between events <= 10min
//! count(instance) >= 2;                      # R_I: at least two events
//! count(instance, "rcp") <= 1;               # R_I: cardinality per class
//! atleast 0.95 of instances: sum("cost") <= 500;   # loose constraint
//! ```

use crate::spec::{Cmp, Constraint, ConstraintSet, InstanceExpr, ParseError, Scope};
use crate::ClassExpr;

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Str(String),
    Num(f64),
    Le,
    Ge,
    Eq,
    LParen,
    RParen,
    Comma,
    Semi,
    Colon,
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer { chars: input.chars().peekable(), line: 1 }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { line: self.line, message: message.into() }
    }

    fn tokenize(mut self) -> Result<Vec<(Token, usize)>, ParseError> {
        let mut out = Vec::new();
        while let Some(&c) = self.chars.peek() {
            match c {
                '\n' => {
                    self.line += 1;
                    self.chars.next();
                }
                c if c.is_whitespace() => {
                    self.chars.next();
                }
                '#' => {
                    for c in self.chars.by_ref() {
                        if c == '\n' {
                            self.line += 1;
                            break;
                        }
                    }
                }
                '(' => {
                    self.chars.next();
                    out.push((Token::LParen, self.line));
                }
                ')' => {
                    self.chars.next();
                    out.push((Token::RParen, self.line));
                }
                ',' => {
                    self.chars.next();
                    out.push((Token::Comma, self.line));
                }
                ';' => {
                    self.chars.next();
                    out.push((Token::Semi, self.line));
                }
                ':' => {
                    self.chars.next();
                    out.push((Token::Colon, self.line));
                }
                '<' | '>' | '=' => {
                    self.chars.next();
                    let eq = self.chars.peek() == Some(&'=');
                    if eq {
                        self.chars.next();
                    }
                    let tok = match (c, eq) {
                        ('<', true) => Token::Le,
                        ('>', true) => Token::Ge,
                        ('=', _) => Token::Eq,
                        _ => return Err(self.err(format!("expected `{c}=`"))),
                    };
                    out.push((tok, self.line));
                }
                '"' => {
                    self.chars.next();
                    let mut s = String::new();
                    loop {
                        match self.chars.next() {
                            Some('"') => break,
                            Some('\\') => match self.chars.next() {
                                Some(esc @ ('"' | '\\')) => s.push(esc),
                                Some(other) => {
                                    return Err(self.err(format!("unknown escape `\\{other}`")))
                                }
                                None => return Err(self.err("unterminated string")),
                            },
                            Some('\n') => return Err(self.err("newline in string literal")),
                            Some(c) => s.push(c),
                            None => return Err(self.err("unterminated string")),
                        }
                    }
                    out.push((Token::Str(s), self.line));
                }
                c if c.is_ascii_digit() || c == '-' || c == '.' => {
                    let mut s = String::new();
                    s.push(c);
                    self.chars.next();
                    while let Some(&d) = self.chars.peek() {
                        if d.is_ascii_digit() || d == '.' || d == 'e' || d == 'E' {
                            s.push(d);
                            self.chars.next();
                            // allow a sign right after the exponent marker
                            if (d == 'e' || d == 'E')
                                && matches!(self.chars.peek(), Some('+') | Some('-'))
                            {
                                s.push(self.chars.next().expect("peeked"));
                            }
                        } else {
                            break;
                        }
                    }
                    let num = s.parse().map_err(|_| self.err(format!("bad number `{s}`")))?;
                    out.push((Token::Num(num), self.line));
                }
                c if c.is_alphabetic() || c == '_' => {
                    let mut s = String::new();
                    while let Some(&d) = self.chars.peek() {
                        if d.is_alphanumeric() || d == '_' {
                            s.push(d);
                            self.chars.next();
                        } else {
                            break;
                        }
                    }
                    out.push((Token::Ident(s), self.line));
                }
                other => return Err(self.err(format!("unexpected character `{other}`"))),
            }
        }
        Ok(out)
    }
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
}

impl Parser {
    fn line(&self) -> usize {
        self.tokens.get(self.pos).or_else(|| self.tokens.last()).map_or(1, |(_, l)| *l)
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { line: self.line(), message: message.into() }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: Token, what: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if t == tok => Ok(()),
            Some(t) => Err(self.err(format!("expected {what}, found {t:?}"))),
            None => Err(self.err(format!("expected {what}, found end of input"))),
        }
    }

    fn cmp(&mut self) -> Result<Cmp, ParseError> {
        match self.next() {
            Some(Token::Le) => Ok(Cmp::Le),
            Some(Token::Ge) => Ok(Cmp::Ge),
            Some(Token::Eq) => Ok(Cmp::Eq),
            other => Err(self.err(format!("expected comparison, found {other:?}"))),
        }
    }

    fn num(&mut self) -> Result<f64, ParseError> {
        match self.next() {
            Some(Token::Num(n)) => Ok(n),
            other => Err(self.err(format!("expected number, found {other:?}"))),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Str(s)) => Ok(s),
            other => Err(self.err(format!("expected string literal, found {other:?}"))),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    /// `name "(" STRING ")"` for the simple aggregates.
    fn attr_arg(&mut self) -> Result<String, ParseError> {
        self.expect(Token::LParen, "`(`")?;
        let s = self.string()?;
        self.expect(Token::RParen, "`)`")?;
        Ok(s)
    }

    fn instance_expr(&mut self, head: &str) -> Result<InstanceExpr, ParseError> {
        match head {
            "sum" => Ok(InstanceExpr::Sum(self.attr_arg()?)),
            "avg" => Ok(InstanceExpr::Avg(self.attr_arg()?)),
            "min" => Ok(InstanceExpr::Min(self.attr_arg()?)),
            "max" => Ok(InstanceExpr::Max(self.attr_arg()?)),
            "span" => Ok(InstanceExpr::Span(self.attr_arg()?)),
            "gap" => Ok(InstanceExpr::MaxGap(self.attr_arg()?)),
            "count" => {
                self.expect(Token::LParen, "`(`")?;
                let scope = self.ident()?;
                if scope != "instance" {
                    return Err(self.err("count(...) requires `instance` scope"));
                }
                match self.next() {
                    Some(Token::RParen) => Ok(InstanceExpr::Count),
                    Some(Token::Comma) => {
                        let class = self.string()?;
                        self.expect(Token::RParen, "`)`")?;
                        Ok(InstanceExpr::CountClass(class))
                    }
                    other => Err(self.err(format!("expected `)` or `,`, found {other:?}"))),
                }
            }
            other => Err(self.err(format!("unknown instance aggregate `{other}`"))),
        }
    }

    fn statement(&mut self) -> Result<Constraint, ParseError> {
        let head = self.ident()?;
        let c = match head.as_str() {
            "groups" => {
                let cmp = self.cmp()?;
                let bound = self.num()?;
                if bound < 0.0 || bound.fract() != 0.0 {
                    return Err(self.err("group count bound must be a non-negative integer"));
                }
                Constraint::GroupCount { cmp, bound: bound as u32 }
            }
            "size" => {
                self.expect(Token::LParen, "`(`")?;
                let g = self.ident()?;
                if g != "g" {
                    return Err(self.err("expected `size(g)`"));
                }
                self.expect(Token::RParen, "`)`")?;
                let cmp = self.cmp()?;
                let bound = self.num()?;
                Constraint::ClassBound { expr: ClassExpr::Size, cmp, bound }
            }
            "distinct" => {
                self.expect(Token::LParen, "`(`")?;
                let scope = match self.ident()?.as_str() {
                    "class" => Scope::Class,
                    "instance" => Scope::Instance,
                    other => {
                        return Err(self
                            .err(format!("expected scope `class` or `instance`, found `{other}`")))
                    }
                };
                self.expect(Token::Comma, "`,`")?;
                let attr = self.string()?;
                self.expect(Token::RParen, "`)`")?;
                let cmp = self.cmp()?;
                let bound = self.num()?;
                match scope {
                    Scope::Class => {
                        Constraint::ClassBound { expr: ClassExpr::DistinctAttr(attr), cmp, bound }
                    }
                    Scope::Instance => {
                        Constraint::instance(InstanceExpr::Distinct(attr), cmp, bound)
                    }
                }
            }
            "cannot_link" => {
                self.expect(Token::LParen, "`(`")?;
                let a = self.string()?;
                self.expect(Token::Comma, "`,`")?;
                let b = self.string()?;
                self.expect(Token::RParen, "`)`")?;
                Constraint::CannotLink { a, b }
            }
            "must_link" => {
                self.expect(Token::LParen, "`(`")?;
                let a = self.string()?;
                self.expect(Token::Comma, "`,`")?;
                let b = self.string()?;
                self.expect(Token::RParen, "`)`")?;
                Constraint::MustLink { a, b }
            }
            "atleast" => {
                let fraction = self.num()?;
                if !(0.0..=1.0).contains(&fraction) {
                    return Err(self.err("fraction must be in [0, 1]"));
                }
                let of = self.ident()?;
                let inst = self.ident()?;
                if of != "of" || inst != "instances" {
                    return Err(self.err("expected `atleast FRACTION of instances: …`"));
                }
                self.expect(Token::Colon, "`:`")?;
                let head = self.ident()?;
                let expr = self.instance_expr(&head)?;
                let cmp = self.cmp()?;
                let bound = self.num()?;
                Constraint::InstanceBound { expr, cmp, bound, min_fraction: fraction }
            }
            other => {
                let expr = self.instance_expr(other)?;
                let cmp = self.cmp()?;
                let bound = self.num()?;
                Constraint::instance(expr, cmp, bound)
            }
        };
        Ok(c)
    }

    fn program(&mut self) -> Result<ConstraintSet, ParseError> {
        let mut set = ConstraintSet::new();
        while self.peek().is_some() {
            let c = self.statement()?;
            set.push(c);
            match self.next() {
                Some(Token::Semi) => {}
                None => break, // final `;` optional
                Some(t) => return Err(self.err(format!("expected `;`, found {t:?}"))),
            }
        }
        Ok(set)
    }
}

/// Parses a constraint program; see the module docs for the grammar.
pub fn parse(input: &str) -> Result<ConstraintSet, ParseError> {
    let tokens = Lexer::new(input).tokenize()?;
    Parser { tokens, pos: 0 }.program()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_statement_forms() {
        let set = parse(
            r#"
            groups <= 10;          # upper bound
            groups >= 3;
            size(g) <= 8;
            distinct(class, "system") <= 1;
            cannot_link("rcp", "acc");
            must_link("inf", "arv");
            distinct(instance, "org:role") <= 3;
            sum("duration") >= 101;
            avg("duration") <= 5e5;
            min("cost") >= 1;
            max("cost") <= 900;
            span("time:timestamp") <= 3600000;
            gap("time:timestamp") <= 600000;
            count(instance) >= 2;
            count(instance, "rcp") <= 1;
            atleast 0.95 of instances: sum("cost") <= 500;
            "#,
        )
        .unwrap();
        assert_eq!(set.len(), 16);
        assert_eq!(set.constraints()[0], Constraint::GroupCount { cmp: Cmp::Le, bound: 10 });
        assert_eq!(
            set.constraints()[3],
            Constraint::ClassBound {
                expr: ClassExpr::DistinctAttr("system".into()),
                cmp: Cmp::Le,
                bound: 1.0
            }
        );
        match &set.constraints()[15] {
            Constraint::InstanceBound { min_fraction, .. } => assert_eq!(*min_fraction, 0.95),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn scientific_notation_and_negative_numbers() {
        let set = parse("avg(\"x\") <= 5e5; sum(\"y\") >= -1.5e-2;").unwrap();
        match &set.constraints()[0] {
            Constraint::InstanceBound { bound, .. } => assert_eq!(*bound, 5e5),
            _ => panic!(),
        }
        match &set.constraints()[1] {
            Constraint::InstanceBound { bound, .. } => assert!((*bound - -0.015).abs() < 1e-12),
            _ => panic!(),
        }
    }

    #[test]
    fn trailing_semicolon_optional() {
        assert_eq!(parse("groups <= 2").unwrap().len(), 1);
        assert_eq!(parse("groups <= 2;").unwrap().len(), 1);
        assert_eq!(parse("").unwrap().len(), 0);
        assert_eq!(parse("  # only a comment\n").unwrap().len(), 0);
    }

    #[test]
    fn string_escapes() {
        let set = parse(r#"cannot_link("a\"b", "c\\d");"#).unwrap();
        assert_eq!(
            set.constraints()[0],
            Constraint::CannotLink { a: "a\"b".into(), b: "c\\d".into() }
        );
    }

    #[test]
    fn equality_comparison() {
        let set = parse("groups == 5; size(g) = 2;").unwrap();
        assert_eq!(set.constraints()[0], Constraint::GroupCount { cmp: Cmp::Eq, bound: 5 });
        match &set.constraints()[1] {
            Constraint::ClassBound { cmp, .. } => assert_eq!(*cmp, Cmp::Eq),
            _ => panic!(),
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("groups <= 2;\nbogus(\"x\") <= 1;").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn rejects_malformed_statements() {
        for bad in [
            "groups <= -1;",
            "groups <= 1.5;",
            "size(h) <= 2;",
            "distinct(case, \"x\") <= 1;",
            "count(class) >= 1;",
            "atleast 1.5 of instances: sum(\"c\") <= 1;",
            "atleast 0.9 of traces: sum(\"c\") <= 1;",
            "sum(\"x\") <= ;",
            "sum(\"x\") < 1;",
            "cannot_link(\"a\");",
            "sum(x) <= 1;",
            "\"noident\" <= 1;",
            "groups <= 2 groups <= 3;",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(parse("cannot_link(\"a, \"b\");").is_err());
        assert!(parse("sum(\"x) <= 1;").is_err());
    }
}
