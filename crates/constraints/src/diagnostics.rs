//! Infeasibility diagnostics.
//!
//! §V-C: when no feasible grouping exists, GECCO "indicates possible causes
//! of the infeasibility, e.g., the affected event classes that lead to
//! violations for constraints in R_C, or the fraction of cases for which
//! constraints in R_I are violated", so users can refine their constraints.

use crate::compiled::CompiledConstraintSet;
use gecco_eventlog::{ClassId, ClassSet, EvalContext, EventLog};
use std::ops::ControlFlow;

/// Findings for one constraint.
#[derive(Debug, Clone)]
pub struct ConstraintReport {
    /// Index into the original [`crate::ConstraintSet`].
    pub spec_index: usize,
    /// Rendering of the constraint.
    pub constraint: String,
    /// Event classes whose *singleton* group already violates the
    /// constraint — these classes cannot be covered at all.
    pub violating_classes: Vec<ClassId>,
    /// Fraction of group instances (over all singleton groups) violating
    /// the constraint; only meaningful for instance-based constraints.
    pub violated_instance_fraction: f64,
}

/// Diagnostics over a whole constraint set.
#[derive(Debug, Clone, Default)]
pub struct Diagnostics {
    /// One report per constraint that shows any violation evidence.
    pub reports: Vec<ConstraintReport>,
}

impl Diagnostics {
    /// Probes every singleton group `{c}` against the constraints and
    /// aggregates violation evidence.
    ///
    /// A singleton that violates an anti-monotonic constraint can never be
    /// covered (no supergroup will satisfy it either), which makes this the
    /// sharpest cheap infeasibility witness available.
    pub fn probe(constraints: &CompiledConstraintSet, ctx: &EvalContext<'_>) -> Diagnostics {
        let log = ctx.log();
        let spec = constraints.spec().constraints();
        let mut violating: Vec<Vec<ClassId>> = vec![Vec::new(); spec.len()];
        // Class-based: which singletons violate which constraint.
        for c in log.classes().ids() {
            let g = ClassSet::singleton(c);
            if let Err(idx) = constraints.check_class(&g, ctx) {
                violating[idx].push(c);
            }
        }
        // Instance-based: per-constraint violation fractions over all
        // singleton instances, materialized through the index (only the
        // class's own traces are touched).
        let mut inst_total = 0usize;
        let mut inst_violations = vec![0usize; spec.len()];
        let traces = log.traces();
        for c in log.classes().ids() {
            let g = ClassSet::singleton(c);
            let mut violated_for_class = vec![false; spec.len()];
            let _: Option<()> = ctx.visit_instances(&g, constraints.segmenter(), |ti, inst| {
                inst_total += 1;
                for check in &constraints.inst_checks {
                    let ok = match crate::compiled::eval_expr(&check.expr, &traces[ti], &inst) {
                        Some(v) => check.cmp.eval(v, check.bound),
                        None => true,
                    };
                    if !ok {
                        inst_violations[check.spec_index] += 1;
                        violated_for_class[check.spec_index] = true;
                    }
                }
                ControlFlow::Continue(())
            });
            for (idx, flag) in violated_for_class.iter().enumerate() {
                if *flag {
                    violating[idx].push(c);
                }
            }
        }
        let mut reports = Vec::new();
        for (idx, constraint) in spec.iter().enumerate() {
            let frac =
                if inst_total > 0 { inst_violations[idx] as f64 / inst_total as f64 } else { 0.0 };
            if !violating[idx].is_empty() || frac > 0.0 {
                reports.push(ConstraintReport {
                    spec_index: idx,
                    constraint: constraint.to_string(),
                    violating_classes: violating[idx].clone(),
                    violated_instance_fraction: frac,
                });
            }
        }
        Diagnostics { reports }
    }

    /// Whether any violation evidence was found.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Human-readable multi-line rendering.
    pub fn render(&self, log: &EventLog) -> String {
        if self.reports.is_empty() {
            return "no violation evidence found at the singleton level".to_string();
        }
        let mut out = String::new();
        for r in &self.reports {
            out.push_str(&format!("constraint `{}`:\n", r.constraint));
            if !r.violating_classes.is_empty() {
                let names: Vec<&str> =
                    r.violating_classes.iter().map(|c| log.class_name(*c)).collect();
                out.push_str(&format!("  violated by singleton classes: {}\n", names.join(", ")));
            }
            if r.violated_instance_fraction > 0.0 {
                out.push_str(&format!(
                    "  violated for {:.1}% of singleton group instances\n",
                    r.violated_instance_fraction * 100.0
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ConstraintSet;
    use gecco_eventlog::LogBuilder;

    fn toy_log() -> EventLog {
        let mut b = LogBuilder::new();
        b.trace("c1")
            .event_with("a", |e| {
                e.int("cost", 10);
            })
            .unwrap()
            .event_with("b", |e| {
                e.int("cost", 1000);
            })
            .unwrap()
            .done();
        b.build()
    }

    #[test]
    fn finds_instance_violators() {
        let log = toy_log();
        let spec = ConstraintSet::parse("sum(\"cost\") <= 100;").unwrap();
        let cs = CompiledConstraintSet::compile(&spec, &log).unwrap();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        let d = Diagnostics::probe(&cs, &ctx);
        assert_eq!(d.reports.len(), 1);
        let r = &d.reports[0];
        assert_eq!(r.violating_classes.len(), 1);
        assert_eq!(log.class_name(r.violating_classes[0]), "b");
        assert!((r.violated_instance_fraction - 0.5).abs() < 1e-9);
        assert!(d.render(&log).contains("b"));
    }

    #[test]
    fn finds_class_violators() {
        let log = toy_log();
        let spec = ConstraintSet::parse("size(g) >= 2;").unwrap();
        let cs = CompiledConstraintSet::compile(&spec, &log).unwrap();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        let d = Diagnostics::probe(&cs, &ctx);
        // Every singleton violates a min-size-2 constraint.
        assert_eq!(d.reports[0].violating_classes.len(), 2);
    }

    #[test]
    fn clean_set_has_no_reports() {
        let log = toy_log();
        let spec = ConstraintSet::parse("size(g) <= 8;").unwrap();
        let cs = CompiledConstraintSet::compile(&spec, &log).unwrap();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        let d = Diagnostics::probe(&cs, &ctx);
        assert!(d.is_empty());
        assert!(d.render(&log).contains("no violation evidence"));
    }
}
