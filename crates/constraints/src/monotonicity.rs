//! Monotonicity of constraints and the derived constraint-checking mode.
//!
//! §IV-A: a constraint is *monotonic* if satisfaction by a group `g` implies
//! satisfaction by every supergroup `g' ⊇ g` (minimum requirements), and
//! *anti-monotonic* if satisfaction by `g` implies satisfaction by every
//! subgroup `g' ⊆ g` (requirements that may not be exceeded). Aggregations
//! such as averages behave non-monotonically.

/// Monotonicity class of a single constraint (Table II, last column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Monotonicity {
    /// Adding event classes to a satisfying group can never violate it.
    Monotonic,
    /// Removing event classes from a satisfying group can never violate it.
    AntiMonotonic,
    /// Neither of the above (averages, equalities, must-link, …).
    NonMonotonic,
}

/// Constraint-checking mode for candidate computation
/// (`setCheckingMode(R)`, Algorithm 1 line 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckingMode {
    /// All per-group constraints are monotonic: supergroups of satisfying
    /// groups need no re-validation.
    Monotonic,
    /// At least one anti-monotonic constraint exists: supergroups of groups
    /// violating the anti-monotonic subset can be pruned.
    AntiMonotonic,
    /// Anything else: no pruning applies.
    NonMonotonic,
}

/// Derives the checking mode from the monotonicities of all per-group
/// constraints (`R \ R_G`), following the paper's rule: anti-monotonic if
/// any constraint is anti-monotonic, monotonic if all are monotonic,
/// non-monotonic otherwise.
pub fn checking_mode(monotonicities: impl IntoIterator<Item = Monotonicity>) -> CheckingMode {
    let mut saw_any = false;
    let mut all_monotonic = true;
    let mut any_anti = false;
    for m in monotonicities {
        saw_any = true;
        match m {
            Monotonicity::Monotonic => {}
            Monotonicity::AntiMonotonic => {
                any_anti = true;
                all_monotonic = false;
            }
            Monotonicity::NonMonotonic => all_monotonic = false,
        }
    }
    if any_anti {
        CheckingMode::AntiMonotonic
    } else if saw_any && all_monotonic {
        CheckingMode::Monotonic
    } else if !saw_any {
        // No per-group constraints at all: everything holds; treat as
        // monotonic so the "already satisfied subset" shortcut applies.
        CheckingMode::Monotonic
    } else {
        CheckingMode::NonMonotonic
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anti_monotonic_wins() {
        let mode = checking_mode([
            Monotonicity::Monotonic,
            Monotonicity::AntiMonotonic,
            Monotonicity::NonMonotonic,
        ]);
        assert_eq!(mode, CheckingMode::AntiMonotonic);
    }

    #[test]
    fn all_monotonic() {
        let mode = checking_mode([Monotonicity::Monotonic, Monotonicity::Monotonic]);
        assert_eq!(mode, CheckingMode::Monotonic);
    }

    #[test]
    fn mixed_without_anti_is_non_monotonic() {
        let mode = checking_mode([Monotonicity::Monotonic, Monotonicity::NonMonotonic]);
        assert_eq!(mode, CheckingMode::NonMonotonic);
        let mode = checking_mode([Monotonicity::NonMonotonic]);
        assert_eq!(mode, CheckingMode::NonMonotonic);
    }

    #[test]
    fn empty_set_is_monotonic() {
        assert_eq!(checking_mode([]), CheckingMode::Monotonic);
    }
}
