//! Log-independent constraint specifications.
//!
//! A [`ConstraintSet`] is what users build (programmatically or via the
//! [DSL](crate::dsl)); it references attributes and classes *by name* and is
//! compiled against a concrete log by [`crate::compiled::CompiledConstraintSet::compile`].

use crate::monotonicity::Monotonicity;
use std::fmt;

/// Comparison operator of a bound constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `≤`
    Le,
    /// `≥`
    Ge,
    /// `=`
    Eq,
}

impl Cmp {
    /// Evaluates `lhs cmp rhs` with a small tolerance for `Eq` on floats.
    #[inline]
    pub fn eval(self, lhs: f64, rhs: f64) -> bool {
        match self {
            Cmp::Le => lhs <= rhs,
            Cmp::Ge => lhs >= rhs,
            Cmp::Eq => (lhs - rhs).abs() < 1e-9,
        }
    }
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Cmp::Le => "<=",
            Cmp::Ge => ">=",
            Cmp::Eq => "==",
        })
    }
}

/// Whether an attribute expression ranges over the *classes* of a group or
/// over the *events of each group instance*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Class-level (a member of `R_C`): evaluated on class metadata only.
    Class,
    /// Instance-level (a member of `R_I`): evaluated per group instance.
    Instance,
}

/// Expressions evaluated on one group, class scope (`R_C`).
#[derive(Debug, Clone, PartialEq)]
pub enum ClassExpr {
    /// `|g|` — number of event classes in the group.
    Size,
    /// `|g.D|` over a *class-level* attribute `D` — e.g. the number of
    /// distinct originating systems among the group's classes (case study,
    /// constraint `BL3`).
    DistinctAttr(String),
}

/// Expressions evaluated on one group instance (`R_I`).
#[derive(Debug, Clone, PartialEq)]
pub enum InstanceExpr {
    /// `|ξ|` — number of events in the instance.
    Count,
    /// Number of events of one specific class in the instance (cardinality
    /// constraints, §IV-A).
    CountClass(String),
    /// `|ξ.D|` — number of distinct values of event attribute `D`.
    Distinct(String),
    /// `sum(ξ.D)` over a numeric event attribute.
    Sum(String),
    /// `avg(ξ.D)` over a numeric event attribute (non-monotonic).
    Avg(String),
    /// `min(ξ.D)` over a numeric event attribute.
    Min(String),
    /// `max(ξ.D)` over a numeric event attribute.
    Max(String),
    /// Time span of the instance: last minus first value of a timestamp (or
    /// numeric) attribute — "the duration of a group instance".
    Span(String),
    /// Maximum difference between *consecutive* events' values — "the time
    /// between consecutive events in a group instance" (Table II).
    MaxGap(String),
}

/// One user constraint (any category).
#[derive(Debug, Clone, PartialEq)]
pub enum Constraint {
    /// `R_G`: bound on the number of groups `|G|`.
    GroupCount { cmp: Cmp, bound: u32 },
    /// `R_C`: bound on a class-scope expression per group.
    ClassBound { expr: ClassExpr, cmp: Cmp, bound: f64 },
    /// `R_C`: two classes may never share a group.
    CannotLink { a: String, b: String },
    /// `R_C`: two classes must share a group.
    MustLink { a: String, b: String },
    /// `R_I`: bound on an instance-scope expression; must hold for at least
    /// `min_fraction` of a group's instances (1.0 = all, the default; 0.95
    /// models the paper's loose constraints).
    InstanceBound { expr: InstanceExpr, cmp: Cmp, bound: f64, min_fraction: f64 },
}

impl Constraint {
    /// Convenience constructor: `|g| cmp bound`.
    pub fn group_size(cmp: Cmp, bound: u32) -> Constraint {
        Constraint::ClassBound { expr: ClassExpr::Size, cmp, bound: bound as f64 }
    }

    /// Convenience constructor: strict instance bound (all instances).
    pub fn instance(expr: InstanceExpr, cmp: Cmp, bound: f64) -> Constraint {
        Constraint::InstanceBound { expr, cmp, bound, min_fraction: 1.0 }
    }

    /// The paper category of this constraint.
    pub fn category(&self) -> Category {
        match self {
            Constraint::GroupCount { .. } => Category::Grouping,
            Constraint::ClassBound { .. }
            | Constraint::CannotLink { .. }
            | Constraint::MustLink { .. } => Category::Class,
            Constraint::InstanceBound { .. } => Category::Instance,
        }
    }

    /// Monotonicity classification (Table II).
    ///
    /// Bounds with `≤` on quantities that can only grow when a group grows
    /// (sizes, counts, sums of non-negative attributes, spans, distinct
    /// counts) are anti-monotonic; the corresponding `≥` bounds are
    /// monotonic. Averages, equalities and must-link are non-monotonic.
    /// `min`/`max` flip: a growing group can only *lower* an instance
    /// minimum and *raise* a maximum.
    pub fn monotonicity(&self) -> Monotonicity {
        use Monotonicity::*;
        match self {
            // Grouping constraints are not per-group; the checking mode
            // ignores them (`R \ R_G`), but classify for completeness.
            Constraint::GroupCount { .. } => NonMonotonic,
            Constraint::CannotLink { .. } => AntiMonotonic,
            Constraint::MustLink { .. } => NonMonotonic,
            Constraint::ClassBound { cmp, .. } => match cmp {
                Cmp::Le => AntiMonotonic,
                Cmp::Ge => Monotonic,
                Cmp::Eq => NonMonotonic,
            },
            Constraint::InstanceBound { expr, cmp, .. } => match (expr, cmp) {
                (_, Cmp::Eq) => NonMonotonic,
                (InstanceExpr::Avg(_), _) => NonMonotonic,
                (InstanceExpr::Min(_), Cmp::Ge) => AntiMonotonic,
                (InstanceExpr::Min(_), Cmp::Le) => Monotonic,
                (InstanceExpr::Max(_), Cmp::Ge) => Monotonic,
                (InstanceExpr::Max(_), Cmp::Le) => AntiMonotonic,
                // Count, CountClass, Distinct, Sum (non-negative), Span,
                // MaxGap: grow with the group.
                (_, Cmp::Ge) => Monotonic,
                (_, Cmp::Le) => AntiMonotonic,
            },
        }
    }
}

impl fmt::Display for InstanceExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceExpr::Count => write!(f, "count(instance)"),
            InstanceExpr::CountClass(c) => write!(f, "count(instance, {c:?})"),
            InstanceExpr::Distinct(a) => write!(f, "distinct(instance, {a:?})"),
            InstanceExpr::Sum(a) => write!(f, "sum({a:?})"),
            InstanceExpr::Avg(a) => write!(f, "avg({a:?})"),
            InstanceExpr::Min(a) => write!(f, "min({a:?})"),
            InstanceExpr::Max(a) => write!(f, "max({a:?})"),
            InstanceExpr::Span(a) => write!(f, "span({a:?})"),
            InstanceExpr::MaxGap(a) => write!(f, "gap({a:?})"),
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::GroupCount { cmp, bound } => write!(f, "groups {cmp} {bound}"),
            Constraint::ClassBound { expr: ClassExpr::Size, cmp, bound } => {
                write!(f, "size(g) {cmp} {bound}")
            }
            Constraint::ClassBound { expr: ClassExpr::DistinctAttr(a), cmp, bound } => {
                write!(f, "distinct(class, {a:?}) {cmp} {bound}")
            }
            Constraint::CannotLink { a, b } => write!(f, "cannot_link({a:?}, {b:?})"),
            Constraint::MustLink { a, b } => write!(f, "must_link({a:?}, {b:?})"),
            Constraint::InstanceBound { expr, cmp, bound, min_fraction } => {
                if *min_fraction < 1.0 {
                    write!(f, "atleast {min_fraction} of instances: {expr} {cmp} {bound}")
                } else {
                    write!(f, "{expr} {cmp} {bound}")
                }
            }
        }
    }
}

/// The paper's three constraint categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// `R_G` — on the grouping as a whole.
    Grouping,
    /// `R_C` — on the classes of one group.
    Class,
    /// `R_I` — on each instance of one group.
    Instance,
}

/// Error from [`ConstraintSet::parse`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "constraint parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// An ordered set of constraint specifications.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConstraintSet {
    constraints: Vec<Constraint>,
}

impl ConstraintSet {
    /// The empty set (every grouping is feasible).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from explicit constraints.
    pub fn from_constraints(constraints: Vec<Constraint>) -> Self {
        ConstraintSet { constraints }
    }

    /// Parses the textual DSL; see [`crate::dsl`] for the grammar.
    pub fn parse(input: &str) -> Result<Self, ParseError> {
        crate::dsl::parse(input)
    }

    /// Appends a constraint.
    pub fn push(&mut self, c: Constraint) -> &mut Self {
        self.constraints.push(c);
        self
    }

    /// Returns a copy with `c` appended (builder style).
    pub fn with(mut self, c: Constraint) -> Self {
        self.constraints.push(c);
        self
    }

    /// All constraints in insertion order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_monotonicities() {
        use Monotonicity::*;
        // "At least 5 event classes per group" — monotonic.
        assert_eq!(Constraint::group_size(Cmp::Ge, 5).monotonicity(), Monotonic);
        // "At most 10 event classes" — anti-monotonic.
        assert_eq!(Constraint::group_size(Cmp::Le, 10).monotonicity(), AntiMonotonic);
        // cannot-link — anti-monotonic; must-link — non-monotonic.
        assert_eq!(
            Constraint::CannotLink { a: "rcp".into(), b: "acc".into() }.monotonicity(),
            AntiMonotonic
        );
        assert_eq!(
            Constraint::MustLink { a: "inf".into(), b: "arv".into() }.monotonicity(),
            NonMonotonic
        );
        // "At least 2 distinct document codes per instance" — monotonic.
        assert_eq!(
            Constraint::instance(InstanceExpr::Distinct("doc".into()), Cmp::Ge, 2.0).monotonicity(),
            Monotonic
        );
        // "Cost of an instance at most 500" — anti-monotonic.
        assert_eq!(
            Constraint::instance(InstanceExpr::Sum("cost".into()), Cmp::Le, 500.0).monotonicity(),
            AntiMonotonic
        );
        // "Average duration at most 1h" — non-monotonic.
        assert_eq!(
            Constraint::instance(InstanceExpr::Avg("duration".into()), Cmp::Le, 3600.0)
                .monotonicity(),
            NonMonotonic
        );
        // "Gap between consecutive events at most 10 min" — anti-monotonic.
        assert_eq!(
            Constraint::instance(InstanceExpr::MaxGap("time:timestamp".into()), Cmp::Le, 600.0)
                .monotonicity(),
            AntiMonotonic
        );
        // "At most 1 event per class per instance" — anti-monotonic.
        assert_eq!(
            Constraint::instance(InstanceExpr::CountClass("a".into()), Cmp::Le, 1.0).monotonicity(),
            AntiMonotonic
        );
        // Loose 95% variant keeps the base monotonicity (Table II).
        let loose = Constraint::InstanceBound {
            expr: InstanceExpr::Sum("cost".into()),
            cmp: Cmp::Le,
            bound: 500.0,
            min_fraction: 0.95,
        };
        assert_eq!(loose.monotonicity(), AntiMonotonic);
    }

    #[test]
    fn min_max_flip() {
        use Monotonicity::*;
        assert_eq!(
            Constraint::instance(InstanceExpr::Min("x".into()), Cmp::Ge, 1.0).monotonicity(),
            AntiMonotonic
        );
        assert_eq!(
            Constraint::instance(InstanceExpr::Min("x".into()), Cmp::Le, 1.0).monotonicity(),
            Monotonic
        );
        assert_eq!(
            Constraint::instance(InstanceExpr::Max("x".into()), Cmp::Ge, 1.0).monotonicity(),
            Monotonic
        );
        assert_eq!(
            Constraint::instance(InstanceExpr::Max("x".into()), Cmp::Le, 1.0).monotonicity(),
            AntiMonotonic
        );
    }

    #[test]
    fn categories() {
        assert_eq!(
            Constraint::GroupCount { cmp: Cmp::Le, bound: 3 }.category(),
            Category::Grouping
        );
        assert_eq!(Constraint::group_size(Cmp::Le, 8).category(), Category::Class);
        assert_eq!(
            Constraint::instance(InstanceExpr::Count, Cmp::Ge, 1.0).category(),
            Category::Instance
        );
    }

    #[test]
    fn cmp_eval() {
        assert!(Cmp::Le.eval(1.0, 2.0));
        assert!(!Cmp::Le.eval(3.0, 2.0));
        assert!(Cmp::Ge.eval(2.0, 2.0));
        assert!(Cmp::Eq.eval(2.0, 2.0 + 1e-12));
        assert!(!Cmp::Eq.eval(2.0, 2.1));
        assert_eq!(Cmp::Le.to_string(), "<=");
    }

    #[test]
    fn builder_style() {
        let set = ConstraintSet::new()
            .with(Constraint::group_size(Cmp::Le, 8))
            .with(Constraint::GroupCount { cmp: Cmp::Ge, bound: 3 });
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
    }
}
