//! CLI for the workspace determinism & safety analyzer.
//!
//! ```text
//! gecco-lint --workspace                  # analyze the whole workspace
//! gecco-lint --workspace --format json    # machine-readable report
//! gecco-lint crates/core/src/pipeline.rs  # analyze specific files
//! gecco-lint --list-rules
//! ```
//!
//! Exit codes: 0 = clean (every finding waived with a reason), 1 =
//! unwaived findings, 2 = usage or I/O error.

use gecco_lint::{analyze_source, render_human, render_json, workspace_root_from, Finding, RULES};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Options {
    workspace: bool,
    json: bool,
    show_waived: bool,
    list_rules: bool,
    paths: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        workspace: false,
        json: false,
        show_waived: false,
        list_rules: false,
        paths: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => opts.workspace = true,
            "--list-rules" => opts.list_rules = true,
            "--show-waived" => opts.show_waived = true,
            "--format" => match it.next().map(String::as_str) {
                Some("json") => opts.json = true,
                Some("human") => opts.json = false,
                other => return Err(format!("--format expects `human` or `json`, got {other:?}")),
            },
            "--help" | "-h" => {
                return Err("usage: gecco-lint [--workspace] [--format human|json] \
                            [--show-waived] [--list-rules] [paths…]"
                    .to_string())
            }
            p if !p.starts_with('-') => opts.paths.push(p.to_string()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if !opts.workspace && opts.paths.is_empty() {
        opts.workspace = true; // the only sensible default
    }
    Ok(opts)
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&args)?;

    if opts.list_rules {
        for rule in RULES {
            println!("{:<16} {}", rule.name, rule.summary);
        }
        return Ok(ExitCode::SUCCESS);
    }

    let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
    let root = workspace_root_from(&cwd)
        .ok_or_else(|| "no workspace root (Cargo.toml with [workspace]) above cwd".to_string())?;

    let mut findings: Vec<Finding> = Vec::new();
    if opts.workspace {
        findings = gecco_lint::analyze_workspace(&root).map_err(|e| e.to_string())?;
    }
    for path in &opts.paths {
        let abs = if Path::new(path).is_absolute() { PathBuf::from(path) } else { cwd.join(path) };
        let rel = abs
            .strip_prefix(&root)
            .map(|p| p.to_string_lossy().replace('\\', "/"))
            .unwrap_or_else(|_| path.clone());
        let src = std::fs::read_to_string(&abs).map_err(|e| format!("{}: {e}", abs.display()))?;
        findings.extend(analyze_source(&rel, &src));
    }

    if opts.json {
        print!("{}", render_json(&findings));
    } else {
        print!("{}", render_human(&findings, opts.show_waived));
    }
    let unwaived = findings.iter().filter(|f| !f.waived).count();
    Ok(if unwaived == 0 { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("gecco-lint: {message}");
            ExitCode::from(2)
        }
    }
}
