//! `unordered-par`: raw rayon that bypasses the order-preserving seams.
//!
//! Every parallel path in this workspace must be bit-identical to its
//! serial form. The only approved way in is the pair of seams
//! (`gecco_core::parallel::par_map`/`par_map_scoped` and
//! `gecco_eventlog::parallel::par_map`) plus the sequenced-consumer
//! pattern in streaming ingestion: ordered chunks in, results combined
//! in the exact serial order. Direct rayon combinators (`par_iter` +
//! `reduce`/`fold`/`for_each`, `rayon::spawn`, `rayon::scope`) have no
//! such guarantee — reduction trees and work-stealing order are
//! scheduler-dependent. The seam modules themselves carry `allow-file`
//! waivers: they are where the ordering proof lives (see
//! `tests/parallel_equivalence.rs`).

use super::FileCx;
use crate::diag::{Finding, Severity};
use crate::lexer::TokKind;

/// Parallel-iterator entry points (method or import position).
const PAR_METHODS: &[&str] = &[
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_bridge",
    "par_chunks",
    "par_chunks_mut",
    "par_drain",
    "par_extend",
    "par_sort",
    "par_sort_unstable",
    "prelude",
];

/// `rayon::<entry>` free functions that schedule unordered work.
const RAYON_FNS: &[&str] = &["spawn", "join", "scope", "scope_fifo", "ThreadPoolBuilder"];

pub(super) fn check(cx: &FileCx<'_>, findings: &mut Vec<Finding>) {
    let toks = cx.toks;
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        let flagged = if PAR_METHODS.contains(&toks[i].text) {
            // `prelude` only counts under a `rayon::` path; the parallel
            // combinators count anywhere (method calls, `use` items).
            toks[i].text != "prelude"
                || (i >= 2 && toks[i - 1].is_punct("::") && toks[i - 2].is_ident("rayon"))
        } else if RAYON_FNS.contains(&toks[i].text) {
            i >= 2 && toks[i - 1].is_punct("::") && toks[i - 2].is_ident("rayon")
        } else {
            false
        };
        if flagged {
            findings.push(Finding {
                rule: "unordered-par",
                file: cx.rel_path.to_string(),
                line: toks[i].line,
                col: toks[i].col,
                message: format!(
                    "raw rayon (`{}`) bypasses the order-preserving parallel seams",
                    toks[i].text
                ),
                note: "route through gecco_core::parallel::par_map/par_map_scoped (or the \
                       eventlog seam); parallel must stay bit-identical to serial",
                severity: Severity::Warning,
                waived: false,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::FileCx;

    fn run(src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let cx = FileCx::new("crates/core/src/x.rs", &lexed);
        let mut findings = Vec::new();
        check(&cx, &mut findings);
        findings
    }

    #[test]
    fn flags_par_combinators_and_rayon_fns() {
        let src = r#"
            use rayon::prelude::*;
            fn f(v: &[u32]) -> u32 {
                rayon::spawn(|| {});
                v.par_iter().map(|x| x + 1).reduce(|| 0, |a, b| a + b)
            }
        "#;
        let findings = run(src);
        let rules: Vec<_> = findings.iter().map(|f| (f.line, f.rule)).collect();
        assert_eq!(rules, vec![(2, "unordered-par"), (4, "unordered-par"), (5, "unordered-par")]);
    }

    #[test]
    fn ordinary_code_and_other_preludes_are_clean() {
        let src = r#"
            use std::io::prelude::*;
            fn f(v: &[u32]) -> u32 {
                let n = rayon::current_num_threads();
                v.iter().sum::<u32>() + n as u32
            }
        "#;
        assert!(run(src).is_empty(), "{:?}", run(src));
    }
}
