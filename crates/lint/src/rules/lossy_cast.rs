//! `lossy-cast`: unchecked `as` narrowing of quantities that grow with
//! the input.
//!
//! `len as u32` in a binary-format writer silently truncates the batch
//! directory at 2³² entries; `id as u16` wraps class ids past 65 535.
//! The rule flags `<expr> as u8|u16|u32` when the casted expression is
//! *evidently* a length, count, id or offset: a `.len()` / `.count()`
//! call, or an identifier whose name says so (`len`, `total_events`,
//! `class_id`, `offset`, …). Use a checked conversion (`u32::try_from`
//! with a loud error — see `store/format.rs`) or waive with the bound
//! that makes the cast safe (e.g. `MAX_CLASSES`).

use super::FileCx;
use crate::diag::{Finding, Severity};
use crate::lexer::{Tok, TokKind};

const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32"];

/// Identifier names (exact or suffix after `_`) that mark a quantity.
const QUANTITY_NAMES: &[&str] =
    &["len", "length", "count", "counts", "id", "idx", "index", "offset", "pos", "position"];

fn is_quantity_name(name: &str) -> bool {
    QUANTITY_NAMES
        .iter()
        .any(|q| name == *q || name.strip_suffix(q).is_some_and(|prefix| prefix.ends_with('_')))
}

/// If the token before `as` closes a call, returns the called method name
/// (`.len()` → `len`).
fn call_before<'a>(toks: &[Tok<'a>], as_pos: usize) -> Option<&'a str> {
    if as_pos < 3 || !toks[as_pos - 1].is_punct(")") {
        return None;
    }
    // Walk back to the matching `(`.
    let mut depth = 0i32;
    let mut j = as_pos - 1;
    loop {
        if toks[j].is_punct(")") {
            depth += 1;
        } else if toks[j].is_punct("(") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
    (j >= 1 && toks[j - 1].kind == TokKind::Ident).then(|| toks[j - 1].text)
}

pub(super) fn check(cx: &FileCx<'_>, findings: &mut Vec<Finding>) {
    let toks = cx.toks;
    for i in 1..toks.len().saturating_sub(1) {
        if !toks[i].is_ident("as") || !NARROW_TARGETS.contains(&toks[i + 1].text) {
            continue;
        }
        let evidence = if let Some(method) = call_before(toks, i) {
            matches!(method, "len" | "count").then_some(method)
        } else if toks[i - 1].kind == TokKind::Ident && is_quantity_name(toks[i - 1].text) {
            Some(toks[i - 1].text)
        } else {
            None
        };
        let Some(what) = evidence else { continue };
        findings.push(Finding {
            rule: "lossy-cast",
            file: cx.rel_path.to_string(),
            line: toks[i].line,
            col: toks[i].col,
            message: format!(
                "`{what} as {}` silently truncates once the value outgrows the target type",
                toks[i + 1].text
            ),
            note: "use a checked conversion (`u32::try_from(..)` with a loud error), or waive \
                   with the bound that makes this safe",
            severity: Severity::Warning,
            waived: false,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::FileCx;

    fn run(src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let cx = FileCx::new("crates/eventlog/src/x.rs", &lexed);
        let mut findings = Vec::new();
        check(&cx, &mut findings);
        findings
    }

    #[test]
    fn flags_len_calls_and_quantity_names() {
        let src = r#"
            fn f(v: &[u8], event_count: usize, class_id: usize) {
                put_u32(out, v.len() as u32);
                put_u16(out, event_count as u16);
                let c = class_id as u16;
                let n = v.iter().count() as u32;
            }
        "#;
        let findings = run(src);
        assert_eq!(findings.len(), 4, "{findings:?}");
        assert_eq!(findings[0].line, 3);
        assert!(findings[0].message.contains("`len as u32`"));
    }

    #[test]
    fn widening_bounded_and_float_casts_are_clean() {
        let src = r#"
            fn f(v: &[u8], tag: u8, x: usize) {
                let a = v.len() as u64;
                let b = v.len() as f64;
                let c = tag as u32;
                let d = x as u32;
                let e = v.len() as usize;
            }
        "#;
        assert!(run(src).is_empty(), "{:?}", run(src));
    }
}
