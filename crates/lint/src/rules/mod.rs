//! The rule catalog and the shared token-analysis context.
//!
//! Each rule is a pure function from a [`FileCx`] to findings. Rules are
//! token-level heuristics, not type analysis: they track file-local
//! evidence (a `let` binding annotated `HashMap`, a field declared
//! `HashSet<…>`) and flag the patterns that have actually bitten this
//! codebase. Precision comes from the waiver system, not from trying to
//! out-clever rustc — see `docs/adr-determinism-lint.md`.

mod ambient_nondet;
mod iter_order;
mod lossy_cast;
mod unordered_par;

use crate::diag::Finding;
use crate::lexer::{Lexed, Tok, TokKind};

/// Name + one-line summary of a rule, for `--list-rules` and docs.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    pub name: &'static str,
    pub summary: &'static str,
}

/// The rule catalog. `bad-waiver` / `unused-waiver` are emitted by the
/// waiver machinery itself but listed here so waivers can name them and
/// `--list-rules` is complete.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "nondet-iter",
        summary: "iteration over HashMap/HashSet whose order can leak into results",
    },
    RuleInfo {
        name: "unordered-par",
        summary: "raw rayon use bypassing the order-preserving par_map seams",
    },
    RuleInfo {
        name: "lossy-cast",
        summary: "unchecked `as u8/u16/u32` narrowing of lengths, counts, ids and offsets",
    },
    RuleInfo {
        name: "ambient-nondet",
        summary: "wall-clock or entropy access outside bench/datagen code",
    },
    RuleInfo {
        name: "float-order",
        summary: "floating-point accumulation over an unordered iterator",
    },
    RuleInfo { name: "bad-waiver", summary: "malformed waiver comment (missing reason, bad rule)" },
    RuleInfo { name: "unused-waiver", summary: "waiver that no longer matches any finding" },
];

/// Whether `name` names a rule waivers may reference.
pub fn is_known_rule(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

/// Crates whose output feeds results (paper pins, differential oracles):
/// the `nondet-iter`, `float-order` and `lossy-cast` rules apply here.
const RESULT_CRATE_PREFIXES: &[&str] = &[
    "crates/eventlog/src/",
    "crates/core/src/",
    "crates/constraints/src/",
    "crates/solver/src/",
    "crates/baselines/src/",
    "crates/discovery/src/",
];

/// Paths where ambient time/entropy is the point (measurement harnesses,
/// seeded data generators): `ambient-nondet` does not apply.
const AMBIENT_EXEMPT_PREFIXES: &[&str] = &["crates/bench/", "crates/datagen/"];

/// One file under analysis: its tokens plus precomputed evidence shared
/// by several rules.
pub struct FileCx<'a> {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: &'a str,
    pub toks: &'a [Tok<'a>],
    /// Names with file-local evidence of being `HashMap`/`HashSet`-typed:
    /// `let` bindings whose statement mentions the type, and `name: …Hash…`
    /// field/parameter declarations.
    pub hash_names: Vec<&'a str>,
    /// Half-open token ranges `[start, end)` covering the iterated
    /// expression of each `for … in EXPR {` loop.
    pub for_expr_ranges: Vec<(usize, usize)>,
}

impl<'a> FileCx<'a> {
    pub fn new(rel_path: &'a str, lexed: &'a Lexed<'a>) -> Self {
        let toks = lexed.toks.as_slice();
        let mut cx = FileCx { rel_path, toks, hash_names: Vec::new(), for_expr_ranges: Vec::new() };
        cx.collect_hash_names();
        cx.collect_for_ranges();
        cx
    }

    pub fn in_result_crate(&self) -> bool {
        RESULT_CRATE_PREFIXES.iter().any(|p| self.rel_path.starts_with(p))
    }

    pub fn ambient_exempt(&self) -> bool {
        AMBIENT_EXEMPT_PREFIXES.iter().any(|p| self.rel_path.starts_with(p))
    }

    pub fn is_hash_name(&self, name: &str) -> bool {
        self.hash_names.contains(&name)
    }

    /// `let [mut] NAME … ;` statements that mention `HashMap`/`HashSet`
    /// anywhere (type annotation or constructor) bind `NAME` as a hash
    /// collection.
    fn collect_hash_names(&mut self) {
        let toks = self.toks;
        for i in 0..toks.len() {
            if toks[i].is_ident("let") {
                let mut j = i + 1;
                if j < toks.len() && toks[j].is_ident("mut") {
                    j += 1;
                }
                if j >= toks.len() || toks[j].kind != TokKind::Ident {
                    continue; // destructuring pattern — out of scope
                }
                let name = toks[j].text;
                if self.let_binds_hash(i, j) && !self.is_hash_name(name) {
                    self.hash_names.push(name);
                }
            }
            // Field / parameter declarations: `NAME : [&|mut|path|<]* HashMap`.
            if toks[i].is_ident("HashMap") || toks[i].is_ident("HashSet") {
                if let Some(name) = declared_name_before(toks, i) {
                    if !self.is_hash_name(name) {
                        self.hash_names.push(name);
                    }
                }
            }
        }
    }

    /// Whether `let [mut] NAME …` binds a hash collection. An explicit
    /// type annotation is authoritative, and within it the *first*
    /// container head decides: `let missing: Vec<_> = { … a HashSet
    /// dedup guard … }` is a `Vec`, and `BTreeMap<&str, &HashMap<…>>`
    /// iterates in key order whatever its values are. Without an
    /// annotation the whole statement decides.
    fn let_binds_hash(&self, let_pos: usize, name_pos: usize) -> bool {
        let toks = self.toks;
        if name_pos + 1 >= toks.len() || !toks[name_pos + 1].is_punct(":") {
            return self.stmt_mentions_hash(let_pos);
        }
        let mut depth = 0i32;
        for tok in toks.iter().skip(name_pos + 2).take(MAX_STMT_TOKENS) {
            match tok.kind {
                TokKind::Punct => match tok.text {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "=" | ";" if depth <= 0 => return false,
                    _ => {}
                },
                TokKind::Ident => match tok.text {
                    "HashMap" | "HashSet" => return true,
                    "BTreeMap" | "BTreeSet" | "Vec" | "VecDeque" => return false,
                    _ => {}
                },
                _ => {}
            }
        }
        false
    }

    /// Whether the statement starting at token `start` (a `let`) mentions
    /// a hash-collection type before its terminating `;`.
    fn stmt_mentions_hash(&self, start: usize) -> bool {
        let mut depth = 0i32;
        for tok in self.toks.iter().skip(start).take(MAX_STMT_TOKENS) {
            match tok.kind {
                TokKind::Punct => match tok.text {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ";" if depth <= 0 => return false,
                    _ => {}
                },
                TokKind::Ident if tok.text == "HashMap" || tok.text == "HashSet" => {
                    return true;
                }
                _ => {}
            }
        }
        false
    }

    /// Records `[start, end)` expression ranges of `for PAT in EXPR {`.
    fn collect_for_ranges(&mut self) {
        let toks = self.toks;
        for i in 0..toks.len() {
            if !toks[i].is_ident("for") {
                continue;
            }
            // `impl Trait for Type` and `for<'a>` binders have no `in`
            // before the body brace; a real loop does.
            let mut j = i + 1;
            let mut depth = 0i32;
            let mut in_pos = None;
            while j < toks.len() && j - i < MAX_STMT_TOKENS {
                let t = &toks[j];
                if t.kind == TokKind::Punct {
                    match t.text {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" if depth <= 0 => break,
                        _ => {}
                    }
                } else if depth <= 0 && t.is_ident("in") {
                    in_pos = Some(j);
                    break;
                }
                j += 1;
            }
            let Some(in_pos) = in_pos else { continue };
            // Expression runs from after `in` to the body `{` at depth 0.
            let mut k = in_pos + 1;
            let mut depth = 0i32;
            while k < toks.len() && k - in_pos < MAX_STMT_TOKENS {
                let t = &toks[k];
                if t.kind == TokKind::Punct {
                    match t.text {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" if depth <= 0 => break,
                        _ => {}
                    }
                }
                k += 1;
            }
            self.for_expr_ranges.push((in_pos + 1, k));
        }
    }

    /// Whether token index `i` sits inside a `for … in EXPR {` expression.
    pub fn in_for_expr(&self, i: usize) -> bool {
        self.for_expr_ranges.iter().any(|&(s, e)| s <= i && i < e)
    }
}

/// Upper bound on tokens scanned when walking a statement — a safety cap,
/// generously above any statement in this workspace.
pub const MAX_STMT_TOKENS: usize = 400;

/// Walks backwards from a `HashMap`/`HashSet` ident over type syntax
/// (`::`-paths, generics, references) to find a `NAME :` declaration.
fn declared_name_before<'a>(toks: &[Tok<'a>], hash_pos: usize) -> Option<&'a str> {
    let mut i = hash_pos;
    while i > 0 {
        i -= 1;
        let t = &toks[i];
        let type_syntax = t.kind == TokKind::Ident
            || t.kind == TokKind::Lifetime
            || t.is_punct("::")
            || t.is_punct("<")
            || t.is_punct("&");
        if type_syntax {
            continue;
        }
        if t.is_punct(":") {
            return (i > 0 && toks[i - 1].kind == TokKind::Ident).then(|| toks[i - 1].text);
        }
        return None;
    }
    None
}

/// Runs every applicable rule over one file.
pub fn run_rules(cx: &FileCx<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    if cx.in_result_crate() {
        iter_order::check(cx, &mut findings); // nondet-iter + float-order
        lossy_cast::check(cx, &mut findings);
    }
    unordered_par::check(cx, &mut findings);
    if !cx.ambient_exempt() {
        ambient_nondet::check(cx, &mut findings);
    }
    findings
}

/// Shared helper: scans forward from token `from` to the end of the
/// enclosing statement (a `;`, or a block `{` outside brackets), calling
/// `visit` on every token. Used for consumer analysis.
pub fn scan_statement_tail(toks: &[Tok<'_>], from: usize, mut visit: impl FnMut(&Tok<'_>)) {
    let mut depth = 0i32;
    for tok in toks.iter().skip(from).take(MAX_STMT_TOKENS) {
        if tok.kind == TokKind::Punct {
            match tok.text {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" | "{" | "}" if depth <= 0 => return,
                _ => {}
            }
        }
        visit(tok);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn hash_bindings_are_collected_from_lets_fields_and_params() {
        let src = r#"
            struct S { cache: RefCell<HashMap<u32, f64>>, plain: Vec<u32> }
            fn f(observed: &mut std::collections::HashMap<u8, u8>, n: usize) {
                let mut seen: HashSet<u32> = HashSet::new();
                let counts = std::collections::HashMap::new();
                let ordered: Vec<u32> = Vec::new();
                let deduped: Vec<u32> = { let g = HashSet::new(); g.len() as u32; Vec::new() };
                let ranked: BTreeMap<u32, HashMap<u8, u8>> = BTreeMap::new();
            }
        "#;
        let lexed = lex(src);
        let cx = FileCx::new("crates/core/src/x.rs", &lexed);
        for name in ["cache", "observed", "seen", "counts"] {
            assert!(cx.is_hash_name(name), "missing {name}: {:?}", cx.hash_names);
        }
        for name in ["plain", "n", "ordered", "deduped", "ranked", "f", "S"] {
            assert!(!cx.is_hash_name(name), "false positive {name}");
        }
    }

    #[test]
    fn for_ranges_cover_the_iterated_expression_only() {
        let src = "for (k, v) in &map { body(); } impl X for Y {} for<'a> fn(&'a u8);";
        let lexed = lex(src);
        let cx = FileCx::new("crates/core/src/x.rs", &lexed);
        assert_eq!(cx.for_expr_ranges.len(), 1);
        let (s, e) = cx.for_expr_ranges[0];
        let texts: Vec<_> = cx.toks[s..e].iter().map(|t| t.text).collect();
        assert_eq!(texts, vec!["&", "map"]);
    }

    #[test]
    fn path_scoping_matches_the_crate_lists() {
        let lexed = lex("");
        assert!(FileCx::new("crates/solver/src/x.rs", &lexed).in_result_crate());
        assert!(!FileCx::new("crates/bench/src/x.rs", &lexed).in_result_crate());
        assert!(FileCx::new("crates/datagen/src/x.rs", &lexed).ambient_exempt());
        assert!(!FileCx::new("crates/core/src/x.rs", &lexed).ambient_exempt());
    }
}
