//! `ambient-nondet`: wall-clock and entropy reads in result code.
//!
//! A long-lived multi-client server cannot tolerate results that depend
//! on *when* a request ran. Time and entropy are legitimate in exactly
//! three places: the bench harness (measurement is its job), the seeded
//! data generators, and deadline-budget bookkeeping (where wall-clock is
//! the spec and the no-budget path is bit-identical). The first two are
//! path-exempt (`crates/bench/`, `crates/datagen/`); budget code carries
//! per-site waivers saying exactly that.

use super::FileCx;
use crate::diag::{Finding, Severity};
use crate::lexer::TokKind;

/// Identifiers that are ambient by themselves.
const AMBIENT_IDENTS: &[&str] =
    &["SystemTime", "RandomState", "thread_rng", "from_entropy", "from_os_rng"];

/// `<head>::<tail>` paths that are ambient.
const AMBIENT_PATHS: &[(&str, &str)] = &[("Instant", "now"), ("rand", "random")];

pub(super) fn check(cx: &FileCx<'_>, findings: &mut Vec<Finding>) {
    let toks = cx.toks;
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        let hit = AMBIENT_IDENTS.contains(&toks[i].text)
            || (i + 2 < toks.len()
                && toks[i + 1].is_punct("::")
                && AMBIENT_PATHS
                    .iter()
                    .any(|(head, tail)| toks[i].is_ident(head) && toks[i + 2].is_ident(tail)));
        if !hit {
            continue;
        }
        findings.push(Finding {
            rule: "ambient-nondet",
            file: cx.rel_path.to_string(),
            line: toks[i].line,
            col: toks[i].col,
            message: format!(
                "ambient nondeterminism (`{}`) outside bench/datagen code",
                toks[i].text
            ),
            note: "results must not depend on wall-clock or entropy; thread timing through \
                   parameters, or waive for observability/deadline code",
            severity: Severity::Warning,
            waived: false,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::FileCx;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let cx = FileCx::new(path, &lexed);
        let mut findings = Vec::new();
        if !cx.ambient_exempt() {
            check(&cx, &mut findings);
        }
        findings
    }

    #[test]
    fn flags_clock_and_entropy_sources() {
        let src = r#"
            fn f() {
                let t0 = Instant::now();
                let t1 = std::time::SystemTime::now();
                let mut rng = StdRng::from_entropy();
            }
        "#;
        let findings = run("crates/core/src/x.rs", src);
        let lines: Vec<_> = findings.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![3, 4, 5], "{findings:?}");
    }

    #[test]
    fn imports_without_now_and_seeded_rngs_are_clean() {
        let src = r#"
            use std::time::Instant;
            fn f(deadline: Option<Instant>) -> StdRng {
                StdRng::seed_from_u64(7)
            }
        "#;
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn bench_and_datagen_are_exempt() {
        let src = "fn f() { let t = Instant::now(); }";
        assert!(run("crates/bench/src/runner.rs", src).is_empty());
        assert!(run("crates/datagen/src/bin/datagen.rs", src).is_empty());
    }
}
