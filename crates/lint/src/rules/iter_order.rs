//! `nondet-iter` and `float-order`: iteration-order leaks out of
//! `HashMap`/`HashSet`.
//!
//! A hash-typed name (see [`FileCx::hash_names`]) is flagged when its
//! elements are *enumerated* — an iterator method (`.iter()`, `.keys()`,
//! `.values()`, `.drain()`, `.into_iter()`, …) or a bare appearance in a
//! `for … in` expression — unless the rest of the statement proves the
//! order cannot leak: a sort, a collect into an ordered (`BTreeMap`/
//! `BTreeSet`) or unordered (`HashMap`/`HashSet`) container, or an
//! order-insensitive reduction (`len`, `count`, `sum` over integers,
//! `min`/`max`, `all`/`any`).
//!
//! When the consumer *is* a reduction but accumulates floating-point
//! values (`sum`/`product`/`fold` with `f32`/`f64` evidence in the same
//! statement), the site is reported as `float-order` instead: float
//! addition is not associative, so even a "commutative" reduction is
//! order-sensitive.
//!
//! Lookup-only use (`get`, `contains_key`, `entry`, `len`, indexing) is
//! never flagged — that is how the dedup/cache maps all over this
//! workspace are supposed to be used.

use super::{scan_statement_tail, FileCx};
use crate::diag::{Finding, Severity};
use crate::lexer::TokKind;

/// Methods that enumerate elements in hash order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Methods that look *through* a wrapper (RefCell, locks, Option) —
/// scanning continues after their call parentheses.
const TRANSPARENT_METHODS: &[&str] = &[
    "borrow",
    "borrow_mut",
    "read",
    "write",
    "lock",
    "as_ref",
    "as_mut",
    "unwrap",
    "expect",
    "clone",
];

/// Consumers that erase iteration order: explicit sorts, re-collections
/// into ordered or unordered containers, and order-insensitive queries.
const ORDER_INSENSITIVE: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "HashMap",
    "HashSet",
    "len",
    "count",
    "is_empty",
    "all",
    "any",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    // Order-insensitive over integers; float accumulation is caught first
    // by the `float-order` check below.
    "sum",
    "product",
];

/// Reductions that are order-sensitive over floats.
const ACCUMULATORS: &[&str] = &["sum", "product", "fold"];

/// What the statement tail after an iteration site tells us.
struct TailEvidence {
    order_insensitive: bool,
    accumulator: bool,
    float: bool,
}

/// Walks back from token `i` to the start of the enclosing statement
/// (just after the previous `;`, `{`, `}` at bracket depth 0, or the `(`
/// of an enclosing call), so consumer evidence like a `BTreeMap` type
/// annotation on the `let` is visible to the scan.
fn stmt_start(cx: &FileCx<'_>, i: usize) -> usize {
    let toks = cx.toks;
    let mut j = i;
    let mut depth = 0i32;
    while j > 0 && i - j < super::MAX_STMT_TOKENS {
        let t = &toks[j - 1];
        if t.kind == TokKind::Punct {
            match t.text {
                ")" | "]" => depth += 1,
                "(" | "[" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                ";" | "{" | "}" if depth == 0 => break,
                _ => {}
            }
        }
        j -= 1;
    }
    j
}

fn tail_evidence(cx: &FileCx<'_>, site: usize) -> TailEvidence {
    let from = stmt_start(cx, site);
    let mut ev = TailEvidence { order_insensitive: false, accumulator: false, float: false };
    scan_statement_tail(cx.toks, from, |tok| match tok.kind {
        TokKind::Ident => {
            if ORDER_INSENSITIVE.contains(&tok.text) {
                ev.order_insensitive = true;
            }
            if ACCUMULATORS.contains(&tok.text) {
                ev.accumulator = true;
            }
            if tok.text == "f64" || tok.text == "f32" {
                ev.float = true;
            }
        }
        TokKind::Num
            if tok.text.contains('.') || tok.text.ends_with("f64") || tok.text.ends_with("f32") =>
        {
            ev.float = true;
        }
        _ => {}
    });
    ev
}

fn report(cx: &FileCx<'_>, findings: &mut Vec<Finding>, i: usize, enumeration: &str) {
    let tok = &cx.toks[i];
    let ev = tail_evidence(cx, i);
    if ev.accumulator && ev.float {
        findings.push(Finding {
            rule: "float-order",
            file: cx.rel_path.to_string(),
            line: tok.line,
            col: tok.col,
            message: format!(
                "floating-point accumulation over unordered {enumeration} of `{}`: float \
                 addition is not associative, so the result depends on hash order",
                tok.text
            ),
            note: "collect and sort first, or accumulate over an ordered source",
            severity: Severity::Warning,
            waived: false,
        });
        return;
    }
    if ev.order_insensitive {
        return;
    }
    findings.push(Finding {
        rule: "nondet-iter",
        file: cx.rel_path.to_string(),
        line: tok.line,
        col: tok.col,
        message: format!(
            "{enumeration} of `{}` has nondeterministic hash order that can leak into results",
            tok.text
        ),
        note: "use BTreeMap/BTreeSet, sort after collecting, or waive with a reason if the \
               order provably folds away",
        severity: Severity::Warning,
        waived: false,
    });
}

pub(super) fn check(cx: &FileCx<'_>, findings: &mut Vec<Finding>) {
    let toks = cx.toks;
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || !cx.is_hash_name(toks[i].text) {
            continue;
        }
        // Skip declaration sites: `name :` and `let name =`.
        if i + 1 < toks.len() && toks[i + 1].is_punct(":") {
            continue;
        }
        if i > 0 && (toks[i - 1].is_ident("let") || toks[i - 1].is_ident("mut")) {
            continue;
        }
        // Follow the method chain through transparent wrappers.
        let mut j = i + 1;
        let mut direct_use = true;
        while j + 1 < toks.len() && toks[j].is_punct(".") && toks[j + 1].kind == TokKind::Ident {
            direct_use = false;
            let method = toks[j + 1].text;
            if ITER_METHODS.contains(&method) {
                report(cx, findings, i, "enumeration");
                break;
            }
            if TRANSPARENT_METHODS.contains(&method) {
                // Advance past the call's argument list, if any.
                let mut k = j + 2;
                if k < toks.len() && toks[k].is_punct("(") {
                    let mut depth = 0i32;
                    while k < toks.len() {
                        if toks[k].is_punct("(") {
                            depth += 1;
                        } else if toks[k].is_punct(")") {
                            depth -= 1;
                            if depth == 0 {
                                k += 1;
                                break;
                            }
                        }
                        k += 1;
                    }
                }
                j = k;
                continue;
            }
            // Any other method (`get`, `insert`, `contains_key`, …) is
            // order-safe by itself.
            break;
        }
        // A bare appearance inside `for … in EXPR {` iterates the map.
        if direct_use && cx.in_for_expr(i) {
            report(cx, findings, i, "`for` iteration");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::FileCx;

    fn run(src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let cx = FileCx::new("crates/core/src/x.rs", &lexed);
        let mut findings = Vec::new();
        check(&cx, &mut findings);
        findings
    }

    #[test]
    fn flags_for_loop_and_iterator_methods() {
        let src = r#"
            fn f() {
                let mut m: HashMap<u32, u32> = HashMap::new();
                for (k, v) in &m { use_it(k, v); }
                let v: Vec<u32> = m.keys().copied().collect();
                m.drain().for_each(drop);
            }
        "#;
        let findings = run(src);
        assert_eq!(findings.len(), 3, "{findings:?}");
        assert!(findings.iter().all(|f| f.rule == "nondet-iter"));
        assert_eq!(findings[0].line, 4);
    }

    #[test]
    fn lookup_only_use_is_clean() {
        let src = r#"
            fn f() {
                let mut m: HashMap<u32, u32> = HashMap::new();
                m.insert(1, 2);
                if m.contains_key(&1) { m.entry(3).or_insert(4); }
                let n = m.len();
                let x = m.get(&1);
                let y = m[&1];
            }
        "#;
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn order_insensitive_consumers_are_clean() {
        let src = r#"
            fn f(m: HashMap<u32, u32>, s: HashSet<u32>) {
                let mut v: Vec<_> = m.iter().collect();
                v.sort();
                let sorted: BTreeMap<u32, u32> = m.iter().map(|(a, b)| (*a, *b)).collect();
                let n: u32 = m.values().sum();
                let top = s.iter().max();
                let other: HashSet<u32> = s.iter().copied().collect();
                let ok = s.iter().all(|x| *x > 0);
            }
        "#;
        // `m.iter()` into a plain Vec sorted on the NEXT statement is still
        // flagged (statement-local analysis) — that is the canonical waiver
        // site. The rest must be clean.
        let findings = run(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn float_accumulation_is_float_order() {
        let src = r#"
            fn f(m: HashMap<u32, f64>) -> f64 {
                let a: f64 = m.values().sum();
                let b = m.values().fold(0.0, |acc, x| acc + x);
                let ints: usize = m.keys().map(|k| *k as usize).sum();
                a + b
            }
        "#;
        let findings = run(src);
        let rules: Vec<_> = findings.iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["float-order", "float-order"], "{findings:?}");
    }

    #[test]
    fn transparent_wrappers_are_followed() {
        let src = r#"
            struct S { cache: RefCell<HashMap<u32, u32>> }
            fn f(s: &S) {
                for k in s.cache.borrow().keys() { use_it(k); }
                let n = s.cache.borrow().len();
            }
        "#;
        let findings = run(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "nondet-iter");
        assert_eq!(findings[0].line, 4);
    }

    #[test]
    fn non_result_crates_are_out_of_scope() {
        let src = "fn f(m: HashMap<u32, u32>) { for k in m.keys() { } }";
        let lexed = lex(src);
        let cx = FileCx::new("crates/bench/src/x.rs", &lexed);
        assert!(!cx.in_result_crate());
    }
}
