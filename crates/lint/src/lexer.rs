//! A handwritten, self-contained Rust lexer: stage one of the lint pass.
//!
//! The same in-house idiom as the XES byte scanner (`xes/scan.rs`): a
//! single forward pass over raw bytes that understands exactly enough of
//! the language to be trustworthy about *boundaries* — string literals
//! (including raw/byte/C strings with any number of `#`s), character
//! literals vs. lifetimes, nested block comments, numbers with type
//! suffixes — so that rule matching over the resulting token stream can
//! never be fooled by a `HashMap` inside a string or a `par_iter` inside
//! a doc comment.
//!
//! Comments are not tokens: they are collected separately, with their
//! line spans, because the waiver system ([`crate::waiver`]) reads them.

/// What kind of token a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`for`, `as`, `HashMap`, …).
    Ident,
    /// A lifetime such as `'a` (without the quote in `text`? no — kept).
    Lifetime,
    /// Integer or float literal, including any type suffix (`0.5f64`).
    Num,
    /// Any string-like literal: `"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// Character literal `'x'`.
    Char,
    /// Punctuation. Single byte, except `::` which is joined because
    /// path matching (`Instant::now`, `rayon::spawn`) depends on it.
    Punct,
}

/// One token with its source position (1-based line and column).
#[derive(Debug, Clone, Copy)]
pub struct Tok<'a> {
    pub kind: TokKind,
    pub text: &'a str,
    pub line: u32,
    pub col: u32,
}

impl<'a> Tok<'a> {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// One comment, kept out of the token stream for the waiver parser.
#[derive(Debug, Clone, Copy)]
pub struct Comment<'a> {
    /// Raw text including the `//` / `/*` markers.
    pub text: &'a str,
    /// Line the comment starts on.
    pub line: u32,
    /// Line the comment ends on (same as `line` for `//` comments).
    pub end_line: u32,
    /// Whether nothing but whitespace precedes the comment on its line —
    /// an own-line waiver targets the next code line, a trailing one its
    /// own line.
    pub own_line: bool,
}

/// The lexed file: tokens and comments, both in source order.
#[derive(Debug, Default)]
pub struct Lexed<'a> {
    pub toks: Vec<Tok<'a>>,
    pub comments: Vec<Comment<'a>>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    /// Byte offset where the current line starts, for column numbers.
    line_start: usize,
    /// Whether a token has already been emitted on the current line.
    line_has_token: bool,
    out: Lexed<'a>,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.bytes.get(self.pos + ahead).unwrap_or(&0)
    }

    fn newline(&mut self) {
        self.line += 1;
        self.line_start = self.pos;
        self.line_has_token = false;
    }

    /// Advances over `n` bytes, tracking line numbers.
    fn advance(&mut self, n: usize) {
        for _ in 0..n {
            if self.pos >= self.bytes.len() {
                return;
            }
            let b = self.bytes[self.pos];
            self.pos += 1;
            if b == b'\n' {
                self.newline();
            }
        }
    }

    fn col_at(&self, start: usize) -> u32 {
        (start - self.line_start + 1) as u32
    }

    fn push(&mut self, kind: TokKind, start: usize, line: u32, col: u32) {
        let text = &self.src[start..self.pos];
        self.out.toks.push(Tok { kind, text, line, col });
        self.line_has_token = true;
    }

    /// Consumes a `//` comment (to end of line, exclusive).
    fn line_comment(&mut self, own_line: bool) {
        let start = self.pos;
        let line = self.line;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.out.comments.push(Comment {
            text: &self.src[start..self.pos],
            line,
            end_line: line,
            own_line,
        });
    }

    /// Consumes a (possibly nested) `/* … */` comment.
    fn block_comment(&mut self, own_line: bool) {
        let start = self.pos;
        let line = self.line;
        self.advance(2);
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.advance(2);
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.advance(2);
            } else {
                self.advance(1);
            }
        }
        self.out.comments.push(Comment {
            text: &self.src[start..self.pos],
            line,
            end_line: self.line,
            own_line,
        });
    }

    /// Consumes a `"…"` string body (opening quote already peeked),
    /// starting from the quote at the current position.
    fn quoted_string(&mut self) {
        self.advance(1); // opening quote
        while self.pos < self.bytes.len() {
            match self.peek(0) {
                b'\\' => self.advance(2),
                b'"' => {
                    self.advance(1);
                    return;
                }
                _ => self.advance(1),
            }
        }
    }

    /// Consumes a raw string `r##"…"##` given the number of hashes;
    /// positioned at the first `#` (or the quote when `hashes == 0`).
    fn raw_string(&mut self, hashes: usize) {
        self.advance(hashes + 1); // hashes + opening quote
        while self.pos < self.bytes.len() {
            if self.peek(0) == b'"' {
                let mut ok = true;
                for i in 0..hashes {
                    if self.peek(1 + i) != b'#' {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.advance(1 + hashes);
                    return;
                }
            }
            self.advance(1);
        }
    }

    /// Lexes the token at an identifier start, handling string-literal
    /// prefixes (`r""`, `br#""#`, `b""`, `c""`) and raw identifiers
    /// (`r#type`).
    fn ident_or_prefixed(&mut self) {
        let start = self.pos;
        let line = self.line;
        let col = self.col_at(start);
        while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
            self.pos += 1;
        }
        let word = &self.src[start..self.pos];
        let raw_capable = matches!(word, "r" | "br" | "cr");
        let str_capable = raw_capable || matches!(word, "b" | "c");
        if str_capable && self.peek(0) == b'"' {
            self.quoted_string();
            self.push(TokKind::Str, start, line, col);
            return;
        }
        if raw_capable && self.peek(0) == b'#' {
            let mut hashes = 0usize;
            while self.peek(hashes) == b'#' {
                hashes += 1;
            }
            if self.peek(hashes) == b'"' {
                self.raw_string(hashes);
                self.push(TokKind::Str, start, line, col);
                return;
            }
            // `r#ident` raw identifier: swallow the `#` and the word.
            if word == "r" && is_ident_start(self.peek(1)) {
                self.pos += 1;
                while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
                    self.pos += 1;
                }
            }
        }
        self.push(TokKind::Ident, start, line, col);
    }

    /// Lexes a numeric literal: digits, `_`, one decimal point when
    /// followed by a digit (so `0..n` ranges survive), and a trailing
    /// alphanumeric suffix run that covers `0xFF`, `1e9`, `3.5f64`,
    /// `42usize`.
    fn number(&mut self) {
        let start = self.pos;
        let line = self.line;
        let col = self.col_at(start);
        while self.pos < self.bytes.len()
            && (self.bytes[self.pos].is_ascii_digit() || self.bytes[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
            self.pos += 1;
            while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
                self.pos += 1;
            }
        }
        while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
            self.pos += 1;
        }
        self.push(TokKind::Num, start, line, col);
    }

    /// Disambiguates `'a'` (char literal) from `'a` (lifetime).
    fn char_or_lifetime(&mut self) {
        let start = self.pos;
        let line = self.line;
        let col = self.col_at(start);
        if self.peek(1) == b'\\' {
            // Escaped char literal: skip to the closing quote.
            self.advance(2);
            while self.pos < self.bytes.len() && self.peek(0) != b'\'' {
                self.advance(1);
            }
            self.advance(1);
            self.push(TokKind::Char, start, line, col);
            return;
        }
        if is_ident_start(self.peek(1)) && self.peek(2) != b'\'' {
            // Lifetime: `'` + identifier with no closing quote.
            self.advance(1);
            while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
                self.pos += 1;
            }
            self.push(TokKind::Lifetime, start, line, col);
            return;
        }
        // Plain char literal like `'x'` or `'\n'` (or a stray quote).
        self.advance(1);
        while self.pos < self.bytes.len() && self.peek(0) != b'\'' && self.peek(0) != b'\n' {
            self.advance(1);
        }
        self.advance(1);
        self.push(TokKind::Char, start, line, col);
    }

    fn run(mut self) -> Lexed<'a> {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => self.advance(1),
                b'/' if self.peek(1) == b'/' => {
                    let own = !self.line_has_token;
                    self.line_comment(own);
                }
                b'/' if self.peek(1) == b'*' => {
                    let own = !self.line_has_token;
                    self.block_comment(own);
                }
                b'"' => {
                    let start = self.pos;
                    let line = self.line;
                    let col = self.col_at(start);
                    self.quoted_string();
                    self.push(TokKind::Str, start, line, col);
                }
                b'\'' => self.char_or_lifetime(),
                _ if is_ident_start(b) => self.ident_or_prefixed(),
                _ if b.is_ascii_digit() => self.number(),
                b':' if self.peek(1) == b':' => {
                    let start = self.pos;
                    let line = self.line;
                    let col = self.col_at(start);
                    self.advance(2);
                    self.push(TokKind::Punct, start, line, col);
                }
                _ => {
                    let start = self.pos;
                    let line = self.line;
                    let col = self.col_at(start);
                    self.advance(1);
                    self.push(TokKind::Punct, start, line, col);
                }
            }
        }
        self.out
    }
}

/// Lexes a whole source file into tokens and comments.
pub fn lex(src: &str) -> Lexed<'_> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        line_start: 0,
        line_has_token: false,
        out: Lexed::default(),
    }
    .run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<&str> {
        lex(src).toks.into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            let x = "HashMap in a string";
            // HashMap in a line comment
            /* HashMap /* nested */ in a block */
            let y = r#"HashMap in a raw "quoted" string"#;
            let z = b"bytes" ;
            let w = 'h';
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap"), "{ids:?}");
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].own_line);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { let c = 'x'; x }";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed.toks.iter().filter(|t| t.kind == TokKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 3);
        assert_eq!(lexed.toks.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
    }

    #[test]
    fn paths_join_double_colons_and_numbers_keep_suffixes() {
        let src = "std::collections::HashMap::<u32, f64>::new(); 0.5f64; 1..n; 0xFF";
        let lexed = lex(src);
        assert!(lexed.toks.iter().any(|t| t.is_punct("::")));
        assert!(!lexed.toks.iter().any(|t| t.is_punct(":")));
        let nums: Vec<_> =
            lexed.toks.iter().filter(|t| t.kind == TokKind::Num).map(|t| t.text).collect();
        assert_eq!(nums, vec!["0.5f64", "1", "0xFF"]);
    }

    #[test]
    fn line_and_column_positions_are_one_based() {
        let src = "a\n  bb\n";
        let lexed = lex(src);
        assert_eq!((lexed.toks[0].line, lexed.toks[0].col), (1, 1));
        assert_eq!((lexed.toks[1].line, lexed.toks[1].col), (2, 3));
        assert_eq!(lexed.toks[1].text, "bb");
    }

    #[test]
    fn trailing_comment_is_not_own_line() {
        let src = "let x = 1; // trailing\n// own line\nlet y = 2;";
        let lexed = lex(src);
        assert!(!lexed.comments[0].own_line);
        assert!(lexed.comments[1].own_line);
    }

    #[test]
    fn raw_identifiers_lex_as_single_idents() {
        let src = "let r#type = r#fn; r#\"raw\"#;";
        let lexed = lex(src);
        assert!(lexed.toks.iter().any(|t| t.kind == TokKind::Ident && t.text == "r#type"));
        assert_eq!(lexed.toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    }
}
