//! Diagnostics: findings, rendering (rustc-style and JSON).

use std::fmt::Write as _;

/// Severity of a finding. Everything the analyzer emits is a gate in CI
/// (warnings-as-errors), but the distinction keeps human output honest:
/// `Error` marks findings about the lint machinery itself (malformed or
/// unused waivers), `Warning` marks rule findings that a waiver may
/// legitimately acknowledge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Warning,
    Error,
}

/// One diagnostic: a rule fired at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule name (`nondet-iter`, …, or `bad-waiver`/`unused-waiver`).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// One-line statement of the problem.
    pub message: String,
    /// Optional remediation hint, rendered as a `note:`.
    pub note: &'static str,
    pub severity: Severity,
    /// Whether a waiver comment acknowledged this finding.
    pub waived: bool,
}

impl Finding {
    /// Sort key: file, then position, then rule — keeps reports stable.
    pub fn sort_key(&self) -> (String, u32, u32, &'static str) {
        (self.file.clone(), self.line, self.col, self.rule)
    }
}

/// Renders findings rustc-style. Waived findings are skipped unless
/// `show_waived` (the summary line always counts them).
pub fn render_human(findings: &[Finding], show_waived: bool) -> String {
    let mut out = String::new();
    let mut shown = 0usize;
    for f in findings {
        if f.waived && !show_waived {
            continue;
        }
        shown += 1;
        let sev = match f.severity {
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        let waived = if f.waived { " (waived)" } else { "" };
        let _ = writeln!(out, "{sev}[{rule}]{waived}: {msg}", rule = f.rule, msg = f.message);
        let _ = writeln!(out, "  --> {}:{}:{}", f.file, f.line, f.col);
        if !f.note.is_empty() {
            let _ = writeln!(out, "  note: {}", f.note);
        }
    }
    let unwaived = findings.iter().filter(|f| !f.waived).count();
    let waived = findings.len() - unwaived;
    let _ = writeln!(
        out,
        "{shown} shown: {unwaived} unwaived finding{s}, {waived} waived",
        s = if unwaived == 1 { "" } else { "s" },
    );
    out
}

fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders every finding (waived included, flagged as such) as a JSON
/// array — the machine-readable report CI uploads on failure.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str("  {\"rule\":\"");
        json_escape(f.rule, &mut out);
        out.push_str("\",\"file\":\"");
        json_escape(&f.file, &mut out);
        let _ = write!(out, "\",\"line\":{},\"col\":{},\"message\":\"", f.line, f.col);
        json_escape(&f.message, &mut out);
        let _ = write!(
            out,
            "\",\"severity\":\"{}\",\"waived\":{}}}",
            match f.severity {
                Severity::Warning => "warning",
                Severity::Error => "error",
            },
            f.waived
        );
        out.push_str(if i + 1 == findings.len() { "\n" } else { ",\n" });
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![
            Finding {
                rule: "nondet-iter",
                file: "crates/x/src/lib.rs".into(),
                line: 3,
                col: 14,
                message: "iteration over `HashMap`".into(),
                note: "sort first",
                severity: Severity::Warning,
                waived: false,
            },
            Finding {
                rule: "lossy-cast",
                file: "crates/x/src/lib.rs".into(),
                line: 9,
                col: 2,
                message: "say \"len\"".into(),
                note: "",
                severity: Severity::Warning,
                waived: true,
            },
        ]
    }

    #[test]
    fn human_rendering_hides_waived_by_default() {
        let text = render_human(&sample(), false);
        assert!(text.contains("warning[nondet-iter]"));
        assert!(text.contains("crates/x/src/lib.rs:3:14"));
        assert!(!text.contains("lossy-cast"));
        assert!(text.contains("1 unwaived finding, 1 waived"));
    }

    #[test]
    fn json_rendering_escapes_and_includes_waived() {
        let json = render_json(&sample());
        assert!(json.contains("\"rule\":\"lossy-cast\""));
        assert!(json.contains("\"waived\":true"));
        assert!(json.contains("say \\\"len\\\""));
        assert!(json.ends_with("]\n"));
    }
}
