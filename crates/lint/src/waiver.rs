//! The waiver system: acknowledged findings stay visible in the code.
//!
//! A waiver is a comment of the form
//!
//! ```text
//! // gecco-lint: allow(rule-name) — reason the pattern is sound here
//! // gecco-lint: allow(rule-a, rule-b) — one comment may cover several rules
//! // gecco-lint: allow-file(rule-name) — whole-file waiver, e.g. a parallel seam
//! ```
//!
//! The reason is **mandatory** — a waiver without one is itself a
//! `bad-waiver` finding and suppresses nothing, so CI fails until the
//! author writes down *why* the flagged pattern cannot leak into results.
//! An own-line waiver targets the next code line; a trailing waiver
//! targets its own line. Waivers that match no finding are reported as
//! `unused-waiver` so stale acknowledgements cannot rot in place.

use crate::diag::{Finding, Severity};
use crate::lexer::Lexed;
use crate::rules::is_known_rule;

/// One parsed, well-formed waiver.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rules this waiver acknowledges.
    pub rules: Vec<String>,
    /// Line whose findings it suppresses (ignored when `file_wide`).
    pub target_line: u32,
    /// `allow-file(...)`: suppress matching findings anywhere in the file.
    pub file_wide: bool,
    /// Line of the waiver comment itself, for `unused-waiver` reports.
    pub decl_line: u32,
    /// Set while applying waivers to findings.
    pub used: bool,
}

/// Strips comment decoration (`//`, `///`, `//!`, `/*`, leading `*`) and
/// returns the payload after the `gecco-lint:` marker, if present.
fn directive_payload(comment: &str) -> Option<&str> {
    let body = comment.trim_start_matches('/').trim_start_matches(['*', '!']).trim_start();
    let rest = body.strip_prefix("gecco-lint:")?;
    Some(rest.trim_start())
}

fn bad(file: &str, line: u32, message: String) -> Finding {
    Finding {
        rule: "bad-waiver",
        file: file.to_string(),
        line,
        col: 1,
        message,
        note: "format: `// gecco-lint: allow(<rule>) — <reason>` (reason is mandatory)",
        severity: Severity::Error,
        waived: false,
    }
}

/// Parses one directive payload (`allow(...) — reason`). Returns the rule
/// list, whether it is file-wide, or an error message.
fn parse_directive(payload: &str) -> Result<(Vec<String>, bool), String> {
    let (file_wide, rest) = if let Some(r) = payload.strip_prefix("allow-file") {
        (true, r)
    } else if let Some(r) = payload.strip_prefix("allow") {
        (false, r)
    } else {
        return Err(format!(
            "unknown gecco-lint directive `{}`; expected `allow(...)` or `allow-file(...)`",
            payload.split_whitespace().next().unwrap_or("")
        ));
    };
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('(').ok_or_else(|| "expected `(` after `allow`".to_string())?;
    let close = rest.find(')').ok_or_else(|| "unclosed rule list".to_string())?;
    let mut rules = Vec::new();
    for rule in rest[..close].split(',') {
        let rule = rule.trim();
        if rule.is_empty() {
            return Err("empty rule name in waiver".to_string());
        }
        if !is_known_rule(rule) {
            return Err(format!("unknown rule `{rule}` in waiver"));
        }
        rules.push(rule.to_string());
    }
    if rules.is_empty() {
        return Err("waiver names no rules".to_string());
    }
    // Everything after the rule list, minus a separator, is the reason.
    let mut reason = rest[close + 1..].trim_start();
    reason = reason.trim_start_matches(['\u{2014}', '\u{2013}', '-', ':']).trim();
    if reason.is_empty() {
        return Err("waiver is missing its reason text".to_string());
    }
    Ok((rules, file_wide))
}

/// Extracts all waivers from a lexed file. Malformed waivers become
/// `bad-waiver` findings (and suppress nothing).
pub fn collect_waivers(file: &str, lexed: &Lexed<'_>) -> (Vec<Waiver>, Vec<Finding>) {
    let mut waivers = Vec::new();
    let mut findings = Vec::new();
    for comment in &lexed.comments {
        let Some(payload) = directive_payload(comment.text) else {
            continue;
        };
        match parse_directive(payload) {
            Err(message) => findings.push(bad(file, comment.line, message)),
            Ok((rules, file_wide)) => {
                // An own-line waiver covers the next line that carries a
                // token; a trailing waiver covers its own line.
                let target_line = if comment.own_line {
                    lexed
                        .toks
                        .iter()
                        .map(|t| t.line)
                        .find(|&l| l > comment.end_line)
                        .unwrap_or(comment.end_line + 1)
                } else {
                    comment.line
                };
                waivers.push(Waiver {
                    rules,
                    target_line,
                    file_wide,
                    decl_line: comment.line,
                    used: false,
                });
            }
        }
    }
    (waivers, findings)
}

/// Marks findings covered by a waiver as `waived`, then reports waivers
/// that covered nothing as `unused-waiver` findings.
pub fn apply_waivers(file: &str, findings: &mut Vec<Finding>, waivers: &mut [Waiver]) {
    for finding in findings.iter_mut() {
        for waiver in waivers.iter_mut() {
            if !waiver.rules.iter().any(|r| r == finding.rule) {
                continue;
            }
            if waiver.file_wide || waiver.target_line == finding.line {
                finding.waived = true;
                waiver.used = true;
            }
        }
    }
    for waiver in waivers.iter() {
        if !waiver.used {
            findings.push(Finding {
                rule: "unused-waiver",
                file: file.to_string(),
                line: waiver.decl_line,
                col: 1,
                message: format!(
                    "waiver for {} matches no finding; delete it or fix the rule list",
                    waiver.rules.join(", ")
                ),
                note: "",
                severity: Severity::Error,
                waived: false,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn own_line_waiver_targets_next_code_line() {
        let src =
            "\n// gecco-lint: allow(nondet-iter) — order folds into a sort below\nlet x = 1;\n";
        let lexed = lex(src);
        let (waivers, bad) = collect_waivers("f.rs", &lexed);
        assert!(bad.is_empty(), "{bad:?}");
        assert_eq!(waivers.len(), 1);
        assert_eq!(waivers[0].target_line, 3);
        assert!(!waivers[0].file_wide);
    }

    #[test]
    fn trailing_waiver_targets_its_own_line() {
        let src = "let x = 1; // gecco-lint: allow(lossy-cast) - bounded by MAX_CLASSES\n";
        let lexed = lex(src);
        let (waivers, bad) = collect_waivers("f.rs", &lexed);
        assert!(bad.is_empty());
        assert_eq!(waivers[0].target_line, 1);
    }

    #[test]
    fn missing_reason_is_a_bad_waiver() {
        for src in [
            "// gecco-lint: allow(nondet-iter)\nlet x = 1;",
            "// gecco-lint: allow(nondet-iter) — \nlet x = 1;",
            "// gecco-lint: allow() — reason\nlet x = 1;",
            "// gecco-lint: allow(no-such-rule) — reason\nlet x = 1;",
            "// gecco-lint: deny(nondet-iter) — reason\nlet x = 1;",
        ] {
            let lexed = lex(src);
            let (waivers, bad) = collect_waivers("f.rs", &lexed);
            assert!(waivers.is_empty(), "{src}");
            assert_eq!(bad.len(), 1, "{src}");
            assert_eq!(bad[0].rule, "bad-waiver");
        }
    }

    #[test]
    fn multi_rule_and_file_wide_waivers_parse() {
        let src = "//! gecco-lint: allow-file(unordered-par, float-order) — this is the seam\n";
        let lexed = lex(src);
        let (waivers, bad) = collect_waivers("f.rs", &lexed);
        assert!(bad.is_empty());
        assert!(waivers[0].file_wide);
        assert_eq!(waivers[0].rules, vec!["unordered-par", "float-order"]);
    }

    #[test]
    fn unused_waiver_is_reported() {
        let src = "// gecco-lint: allow(nondet-iter) — nothing here\nlet x = 1;\n";
        let lexed = lex(src);
        let (mut waivers, _) = collect_waivers("f.rs", &lexed);
        let mut findings = Vec::new();
        apply_waivers("f.rs", &mut findings, &mut waivers);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "unused-waiver");
        assert_eq!(findings[0].line, 1);
    }
}
