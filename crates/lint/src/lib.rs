//! `gecco-lint` — the workspace determinism & safety analyzer.
//!
//! Every guarantee this reproduction makes (paper pins bit-for-bit,
//! serial == parallel, spliced == rebuilt, streamed == in-memory) is
//! enforced *dynamically* by differential tests. This crate enforces the
//! underlying coding discipline *statically*, at CI time: no hash-order
//! iteration in result paths, no rayon outside the order-preserving
//! seams, no silent integer truncation in binary formats, no ambient
//! clock/entropy in result code, no float accumulation over unordered
//! iterators.
//!
//! The pass is deliberately self-contained — a handwritten lexer and
//! token-level rules, no syntax-tree dependency — in the same vendored,
//! registry-free spirit as the rest of the workspace. Intentional sites
//! are acknowledged **in place** with waiver comments that must carry a
//! reason:
//!
//! ```text
//! // gecco-lint: allow(nondet-iter) — sorted into deterministic order on the next line
//! ```
//!
//! Run it with `cargo run -p gecco-lint -- --workspace` (see the README
//! "Static analysis" section and `docs/adr-determinism-lint.md`).

pub mod diag;
pub mod lexer;
pub mod rules;
pub mod waiver;

pub use diag::{render_human, render_json, Finding, Severity};
pub use rules::{is_known_rule, RuleInfo, RULES};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Analyzes one source file's text. `rel_path` is the workspace-relative,
/// `/`-separated path — rule scoping (result crates, bench/datagen
/// exemptions) keys off it. Returns all findings, waived ones flagged.
pub fn analyze_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let lexed = lexer::lex(src);
    let cx = rules::FileCx::new(rel_path, &lexed);
    let mut findings = rules::run_rules(&cx);
    let (mut waivers, mut bad) = waiver::collect_waivers(rel_path, &lexed);
    waiver::apply_waivers(rel_path, &mut findings, &mut waivers);
    findings.append(&mut bad);
    findings.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    findings
}

/// Collects the first-party sources the analyzer covers: the facade's
/// `src/` and every `crates/*/src/` tree (benches, examples, integration
/// tests and `vendor/` shims are out of scope — they never produce
/// results). Paths come back sorted for deterministic reports.
pub fn collect_files(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut files = Vec::new();
    push_rs_files(&root.join("src"), "src", &mut files)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> =
            fs::read_dir(&crates_dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        members.sort();
        for member in members {
            let src = member.join("src");
            if src.is_dir() {
                let name = member.file_name().and_then(|n| n.to_str()).unwrap_or_default();
                push_rs_files(&src, &format!("crates/{name}/src"), &mut files)?;
            }
        }
    }
    files.sort();
    Ok(files)
}

fn push_rs_files(dir: &Path, rel: &str, out: &mut Vec<(String, PathBuf)>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<(String, PathBuf)> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let name = e.file_name().to_str()?.to_string();
            Some((name, e.path()))
        })
        .collect();
    entries.sort();
    for (name, path) in entries {
        if path.is_dir() {
            push_rs_files(&path, &format!("{rel}/{name}"), out)?;
        } else if name.ends_with(".rs") {
            out.push((format!("{rel}/{name}"), path));
        }
    }
    Ok(())
}

/// Runs the analyzer over every covered file under the workspace root.
pub fn analyze_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for (rel, path) in collect_files(root)? {
        let src = fs::read_to_string(&path)?;
        findings.extend(analyze_source(&rel, &src));
    }
    Ok(findings)
}

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn workspace_root_from(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d.to_path_buf());
                }
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_waiver_flow() {
        let src = "\
fn f(m: HashMap<u32, u32>) {
    for k in m.keys() { use_it(k); }
    // gecco-lint: allow(nondet-iter) — demo: order folds into the digest
    for k in m.keys() { use_it(k); }
}
";
        let findings = analyze_source("crates/core/src/demo.rs", src);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(!findings[0].waived && findings[0].line == 2);
        assert!(findings[1].waived && findings[1].line == 4);
    }

    #[test]
    fn findings_are_sorted_by_position() {
        let src = "\
fn f(m: HashMap<u32, u32>, v: &[u8]) {
    let x = v.len() as u32;
    for k in m.keys() { use_it(k, x); }
}
";
        let findings = analyze_source("crates/eventlog/src/demo.rs", src);
        let lines: Vec<_> = findings.iter().map(|f| (f.line, f.rule)).collect();
        assert_eq!(lines, vec![(2, "lossy-cast"), (3, "nondet-iter")]);
    }

    #[test]
    fn workspace_root_is_found_from_this_crate() {
        let root = workspace_root_from(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("root");
        assert!(root.join("crates/lint/Cargo.toml").is_file());
    }
}
