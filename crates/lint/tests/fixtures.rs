//! Fixture-based end-to-end tests: every rule fires on its known-bad
//! snippet with the expected span, waivers suppress exactly what they
//! name, the CLI exits nonzero on a reintroduced bad pattern — and the
//! workspace itself is clean (the self-dogfooding gate).

use gecco_lint::{analyze_source, analyze_workspace, workspace_root_from, Finding};
use std::path::Path;
use std::process::Command;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Analyzes a fixture as if it lived in a result crate (rule scoping is
/// path-based; `tests/fixtures/` itself is deliberately out of scope).
fn analyze_fixture(name: &str) -> Vec<Finding> {
    analyze_source("crates/core/src/fixture.rs", &fixture(name))
}

#[test]
fn each_rule_fires_on_its_fixture_with_the_expected_span() {
    let cases = [
        ("nondet_iter.rs", "nondet-iter", 6),
        ("float_order.rs", "float-order", 5),
        ("lossy_cast.rs", "lossy-cast", 3),
        ("ambient_nondet.rs", "ambient-nondet", 3),
        ("unordered_par.rs", "unordered-par", 3),
    ];
    for (file, rule, line) in cases {
        let findings = analyze_fixture(file);
        assert_eq!(findings.len(), 1, "{file}: want exactly one finding, got {findings:?}");
        let f = &findings[0];
        assert_eq!((f.rule, f.line), (rule, line), "{file}: {findings:?}");
        assert!(f.col > 0 && !f.waived);
    }
}

#[test]
fn waiver_suppresses_exactly_one_finding() {
    let findings = analyze_fixture("waiver.rs");
    let spans: Vec<_> = findings.iter().map(|f| (f.rule, f.line, f.waived)).collect();
    assert_eq!(spans, vec![("nondet-iter", 7, true), ("nondet-iter", 8, false)], "{findings:?}");
}

#[test]
fn waiver_without_reason_is_a_finding_and_suppresses_nothing() {
    let findings = analyze_fixture("bad_waiver.rs");
    let bad = findings.iter().find(|f| f.rule == "bad-waiver").expect("bad-waiver: {findings:?}");
    assert!(bad.message.contains("reason"), "{bad:?}");
    assert!(
        findings.iter().any(|f| f.rule == "nondet-iter" && !f.waived),
        "the reasonless waiver must not suppress the finding: {findings:?}"
    );
}

#[test]
fn cli_exits_nonzero_with_the_offending_span() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let bad = manifest.join("tests/fixtures/unordered_par.rs");
    let output = Command::new(env!("CARGO_BIN_EXE_gecco-lint"))
        .arg(&bad)
        .current_dir(manifest)
        .output()
        .expect("run gecco-lint");
    assert_eq!(output.status.code(), Some(1), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("crates/lint/tests/fixtures/unordered_par.rs:3:7"),
        "want the exact file:line:col, got:\n{stdout}"
    );
    assert!(stdout.contains("unordered-par"), "{stdout}");
}

#[test]
fn cli_json_report_is_machine_readable() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let bad = manifest.join("tests/fixtures/unordered_par.rs");
    let output = Command::new(env!("CARGO_BIN_EXE_gecco-lint"))
        .args([bad.to_str().unwrap(), "--format", "json"])
        .current_dir(manifest)
        .output()
        .expect("run gecco-lint");
    assert_eq!(output.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("\"rule\":\"unordered-par\""), "{stdout}");
    assert!(stdout.contains("\"line\":3"), "{stdout}");
}

/// The self-dogfooding gate: the workspace's own sources must be clean —
/// every remaining finding carries an in-place waiver with a reason.
#[test]
fn workspace_is_clean() {
    let root = workspace_root_from(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("root");
    let findings = analyze_workspace(&root).expect("analyze");
    let unwaived: Vec<_> = findings.iter().filter(|f| !f.waived).collect();
    assert!(
        unwaived.is_empty(),
        "fix these or waive them with a reason:\n{}",
        gecco_lint::render_human(&findings, false)
    );
    assert!(!findings.is_empty(), "waived findings should exist (the waiver system is in use)");
}
