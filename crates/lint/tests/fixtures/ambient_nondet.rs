// Fixture: known-bad — wall-clock read in result code.
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
