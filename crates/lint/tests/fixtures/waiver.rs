// Fixture: two identical bad patterns; the waiver must suppress exactly
// the first one and leave the second firing.
use std::collections::HashMap;

pub fn pair(m: &HashMap<u32, u32>) -> (Vec<u32>, Vec<u32>) {
    // gecco-lint: allow(nondet-iter) — fixture: the caller sorts this before use
    let a: Vec<u32> = m.keys().copied().collect();
    let b: Vec<u32> = m.keys().copied().collect();
    (a, b)
}
