// Fixture: known-bad — raw rayon bypassing the order-preserving seams.
pub fn sum(v: &[u32]) -> u32 {
    v.par_iter().map(|x| x + 1).sum()
}
