// Fixture: a waiver without a reason is itself a finding and suppresses
// nothing.
use std::collections::HashMap;

pub fn bad(m: &HashMap<u32, u32>) -> Vec<u32> {
    // gecco-lint: allow(nondet-iter)
    m.keys().copied().collect()
}
