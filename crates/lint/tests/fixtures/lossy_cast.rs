// Fixture: known-bad — unchecked narrowing of a length.
pub fn directory_entry(v: &[u8]) -> u32 {
    v.len() as u32
}
