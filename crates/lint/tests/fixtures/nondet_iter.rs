// Fixture: known-bad — hash-order iteration feeding an output vector.
use std::collections::HashMap;

pub fn emit(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for (k, v) in m.iter() {
        out.push(k + v);
    }
    out
}
