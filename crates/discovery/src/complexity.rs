//! Model complexity metrics.
//!
//! The paper's "C. red." measure compares the control-flow complexity (CFC,
//! Cardoso) of models discovered from the original and abstracted logs,
//! following Reijers & Mendling \[29\]: every XOR-split contributes its
//! fanout (number of possible routing states), every AND-split contributes
//! 1, an OR-split would contribute `2^n − 1` (our discovery emits no ORs).
//! Size, CNC and density are reported alongside as secondary indicators.

use crate::model::{GatewayKind, ProcessModel};

/// Complexity summary of one process model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelComplexity {
    /// Control-flow complexity (Cardoso).
    pub cfc: f64,
    /// Node count (tasks + gateways).
    pub size: usize,
    /// Coefficient of network connectivity: arcs / nodes.
    pub cnc: f64,
    /// Density: arcs / (nodes · (nodes − 1)).
    pub density: f64,
}

impl ModelComplexity {
    /// Computes the metrics for `model`.
    pub fn of(model: &ProcessModel) -> ModelComplexity {
        let mut cfc = 0.0;
        for g in model.splits() {
            cfc += match g.kind {
                GatewayKind::Xor => g.fanout as f64,
                GatewayKind::And => 1.0,
            };
        }
        // Self-loops are implicit XOR decisions (repeat or move on).
        cfc += model.self_loops() as f64;
        let size = model.size();
        let arcs = model.edges().len();
        ModelComplexity {
            cfc,
            size,
            cnc: if size == 0 { 0.0 } else { arcs as f64 / size as f64 },
            density: if size <= 1 {
                0.0
            } else {
                arcs as f64 / (size as f64 * (size as f64 - 1.0))
            },
        }
    }

    /// Relative reduction from `self` (the original) to `abstracted`:
    /// `1 − CFC'/CFC`, clamped to 0 when the original has no complexity.
    pub fn cfc_reduction(&self, abstracted: &ModelComplexity) -> f64 {
        if self.cfc <= 0.0 {
            0.0
        } else {
            1.0 - abstracted.cfc / self.cfc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{discover, DiscoveryOptions};
    use gecco_eventlog::LogBuilder;

    fn build(traces: &[&[&str]]) -> gecco_eventlog::EventLog {
        let mut b = LogBuilder::new();
        for (i, t) in traces.iter().enumerate() {
            let mut tb = b.trace(&format!("t{i}"));
            for cls in *t {
                tb = tb.event(cls).unwrap();
            }
            tb.done();
        }
        b.build()
    }

    #[test]
    fn sequence_has_zero_cfc() {
        let log = build(&[&["a", "b", "c"]]);
        let c = ModelComplexity::of(&discover(&log, DiscoveryOptions::default()));
        assert_eq!(c.cfc, 0.0);
        assert_eq!(c.size, 3);
        assert!((c.cnc - 2.0 / 3.0).abs() < 1e-12);
        assert!(c.density > 0.0);
    }

    #[test]
    fn xor_counts_fanout_and_counts_one() {
        // XOR split (2 branches) + XOR join.
        let xor_log = build(&[&["s", "a", "e"], &["s", "b", "e"]]);
        let xor = ModelComplexity::of(&discover(&xor_log, DiscoveryOptions::default()));
        assert_eq!(xor.cfc, 2.0 + 0.0, "splits only: XOR fanout 2");
        // AND split contributes 1.
        let and_log = build(&[&["s", "a", "b", "e"], &["s", "b", "a", "e"]]);
        let and = ModelComplexity::of(&discover(&and_log, DiscoveryOptions::default()));
        assert_eq!(and.cfc, 1.0);
    }

    #[test]
    fn reduction_is_relative() {
        let orig = ModelComplexity { cfc: 10.0, size: 10, cnc: 1.0, density: 0.1 };
        let abs = ModelComplexity { cfc: 4.0, size: 5, cnc: 0.8, density: 0.2 };
        assert!((orig.cfc_reduction(&abs) - 0.6).abs() < 1e-12);
        let flat = ModelComplexity { cfc: 0.0, size: 3, cnc: 0.5, density: 0.1 };
        assert_eq!(flat.cfc_reduction(&abs), 0.0);
    }

    #[test]
    fn self_loop_adds_decision() {
        let log = build(&[&["a", "a", "b"]]);
        let c = ModelComplexity::of(&discover(&log, DiscoveryOptions::default()));
        assert!(c.cfc >= 1.0);
    }
}
