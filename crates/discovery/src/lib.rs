//! Process-discovery substrate.
//!
//! The paper's evaluation measures *complexity reduction* by discovering a
//! process model from the original and the abstracted log with Split
//! Miner \[30\] and comparing an established control-flow complexity
//! metric \[29\]. Split Miner is not redistributable, so this crate
//! implements a discovery pipeline in its spirit:
//!
//! * [`filter`] — percentile-based DFG filtering (the "80/20 model" of the
//!   case study) that always preserves every node's strongest incoming and
//!   outgoing edge, so the model stays connected;
//! * [`oracle`] — a directly-follows concurrency/loop oracle à la Split
//!   Miner (balanced bidirectional edges ⇒ concurrency, unbalanced ⇒ loop);
//! * [`model`] — construction of a gateway-labeled process graph
//!   (XOR/AND splits and joins);
//! * [`complexity`] — Cardoso control-flow complexity (CFC), size,
//!   coefficient of network connectivity (CNC) and density.

pub mod complexity;
pub mod filter;
pub mod model;
pub mod oracle;

pub use complexity::ModelComplexity;
pub use filter::{filter_dfg, FilteredDfg};
pub use model::{discover, DiscoveryOptions, GatewayKind, ProcessModel};
pub use oracle::{ConcurrencyOracle, Relation};
