//! Gateway-structured process models discovered from logs.
//!
//! The discovery pipeline: build the DFG → filter by percentile → classify
//! pair relations with the [`crate::oracle`] → attach split/join gateways
//! where a task has multiple (retained, non-loop) successors or
//! predecessors. Successor sets whose members are mutually concurrent get
//! an AND gateway, otherwise XOR; mixed sets are decomposed into concurrent
//! clusters under an outer XOR — the structure the complexity metric
//! of \[29\] expects.

use crate::filter::{filter_dfg, FilteredDfg};
use crate::oracle::{ConcurrencyOracle, Relation};
use gecco_eventlog::{ClassId, Dfg, EventLog};

/// Gateway semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatewayKind {
    /// Exclusive choice.
    Xor,
    /// Parallel split/join.
    And,
}

/// A split or join gateway attached to a task.
#[derive(Debug, Clone)]
pub struct Gateway {
    /// XOR or AND.
    pub kind: GatewayKind,
    /// Number of outgoing (for splits) / incoming (for joins) branches.
    pub fanout: usize,
}

/// A discovered process model: tasks (event classes), retained edges and
/// the gateways implied by the branching structure.
#[derive(Debug, Clone)]
pub struct ProcessModel {
    tasks: Vec<ClassId>,
    edges: Vec<(ClassId, ClassId)>,
    splits: Vec<Gateway>,
    joins: Vec<Gateway>,
    self_loops: usize,
}

/// Options for [`discover`].
#[derive(Debug, Clone, Copy)]
pub struct DiscoveryOptions {
    /// Fraction of DFG edges to keep (1.0 = no filtering; the case study's
    /// "80/20 model" uses 0.8).
    pub edge_keep_fraction: f64,
    /// Concurrency imbalance threshold (Split Miner's ε).
    pub concurrency_epsilon: f64,
}

impl Default for DiscoveryOptions {
    fn default() -> Self {
        DiscoveryOptions { edge_keep_fraction: 1.0, concurrency_epsilon: 0.3 }
    }
}

/// Discovers a process model from `log`.
pub fn discover(log: &EventLog, options: DiscoveryOptions) -> ProcessModel {
    let dfg = Dfg::from_log(log);
    let filtered = filter_dfg(&dfg, options.edge_keep_fraction);
    let oracle = ConcurrencyOracle::new(&dfg, &filtered, options.concurrency_epsilon);
    build_model(log, &dfg, &filtered, &oracle)
}

fn build_model(
    _log: &EventLog,
    dfg: &Dfg,
    filtered: &FilteredDfg,
    oracle: &ConcurrencyOracle<'_>,
) -> ProcessModel {
    let tasks: Vec<ClassId> = dfg.nodes().filter(|&c| dfg.class_count(c) > 0).collect();
    // Concurrent pairs are represented by AND gateways at their common
    // split/join, not by causal edges — remove their mutual edges (as Split
    // Miner does) so they do not masquerade as choices downstream.
    let mut edges = Vec::new();
    let mut self_loops = 0usize;
    for &(a, b, _) in filtered.edges() {
        if a == b {
            self_loops += 1;
        } else if oracle.relation(a, b) != Relation::Concurrent {
            edges.push((a, b));
        }
    }
    let keeps = |x: ClassId, y: ClassId| oracle.relation(x, y) != Relation::Concurrent;
    let mut splits = Vec::new();
    let mut joins = Vec::new();
    for &t in &tasks {
        let succs: Vec<ClassId> =
            filtered.successors(t).filter(|&s| s != t && keeps(t, s)).collect();
        if succs.len() > 1 {
            splits.extend(gateways_for(&succs, oracle));
        }
        let preds: Vec<ClassId> =
            filtered.predecessors(t).filter(|&p| p != t && keeps(p, t)).collect();
        if preds.len() > 1 {
            joins.extend(gateways_for(&preds, oracle));
        }
    }
    ProcessModel { tasks, edges, splits, joins, self_loops }
}

/// Decomposes a branch set into concurrent clusters: members of one cluster
/// are mutually concurrent (greedy clustering); clusters of size > 1 become
/// AND gateways, and if more than one cluster remains, an outer XOR chooses
/// between them.
fn gateways_for(branches: &[ClassId], oracle: &ConcurrencyOracle<'_>) -> Vec<Gateway> {
    let mut clusters: Vec<Vec<ClassId>> = Vec::new();
    for &b in branches {
        let slot = clusters
            .iter_mut()
            .find(|cluster| cluster.iter().all(|&m| oracle.relation(m, b) == Relation::Concurrent));
        match slot {
            Some(cluster) => cluster.push(b),
            None => clusters.push(vec![b]),
        }
    }
    let mut out = Vec::new();
    for cluster in &clusters {
        if cluster.len() > 1 {
            out.push(Gateway { kind: GatewayKind::And, fanout: cluster.len() });
        }
    }
    if clusters.len() > 1 {
        out.push(Gateway { kind: GatewayKind::Xor, fanout: clusters.len() });
    }
    out
}

impl ProcessModel {
    /// The model's tasks.
    pub fn tasks(&self) -> &[ClassId] {
        &self.tasks
    }

    /// Non-self-loop edges.
    pub fn edges(&self) -> &[(ClassId, ClassId)] {
        &self.edges
    }

    /// Split gateways.
    pub fn splits(&self) -> &[Gateway] {
        &self.splits
    }

    /// Join gateways.
    pub fn joins(&self) -> &[Gateway] {
        &self.joins
    }

    /// Number of self-loops (tasks that directly repeat).
    pub fn self_loops(&self) -> usize {
        self.self_loops
    }

    /// Total node count: tasks + gateways.
    pub fn size(&self) -> usize {
        self.tasks.len() + self.splits.len() + self.joins.len()
    }

    /// Renders the model as DOT (tasks as boxes, gateways as diamonds).
    pub fn to_dot(&self, log: &EventLog) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph model {\n  rankdir=LR;\n  node [shape=box];\n");
        for &t in &self.tasks {
            let _ = writeln!(out, "  \"{}\";", log.class_name(t));
        }
        for (a, b) in &self.edges {
            let _ = writeln!(out, "  \"{}\" -> \"{}\";", log.class_name(*a), log.class_name(*b));
        }
        for (i, g) in self.splits.iter().enumerate() {
            let _ = writeln!(
                out,
                "  split{} [shape=diamond, label=\"{}{}\"];",
                i,
                if g.kind == GatewayKind::Xor { "X" } else { "+" },
                g.fanout
            );
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecco_eventlog::LogBuilder;

    fn build(traces: &[&[&str]]) -> EventLog {
        let mut b = LogBuilder::new();
        for (i, t) in traces.iter().enumerate() {
            let mut tb = b.trace(&format!("t{i}"));
            for cls in *t {
                tb = tb.event(cls).unwrap();
            }
            tb.done();
        }
        b.build()
    }

    #[test]
    fn xor_split_from_exclusive_branches() {
        let log = build(&[&["s", "a", "e"], &["s", "b", "e"]]);
        let model = discover(&log, DiscoveryOptions::default());
        // s splits into {a, b} (never concurrent) → one XOR split of 2.
        assert_eq!(model.splits().len(), 1);
        assert_eq!(model.splits()[0].kind, GatewayKind::Xor);
        assert_eq!(model.splits()[0].fanout, 2);
        // e joins them → one XOR join.
        assert_eq!(model.joins().len(), 1);
        assert_eq!(model.joins()[0].kind, GatewayKind::Xor);
    }

    #[test]
    fn and_split_from_concurrent_branches() {
        let log = build(&[&["s", "a", "b", "e"], &["s", "b", "a", "e"]]);
        let model = discover(&log, DiscoveryOptions::default());
        let and_splits: Vec<_> =
            model.splits().iter().filter(|g| g.kind == GatewayKind::And).collect();
        assert_eq!(and_splits.len(), 1, "a ∥ b behind s");
        assert_eq!(and_splits[0].fanout, 2);
    }

    #[test]
    fn sequence_has_no_gateways() {
        let log = build(&[&["a", "b", "c"]]);
        let model = discover(&log, DiscoveryOptions::default());
        assert!(model.splits().is_empty());
        assert!(model.joins().is_empty());
        assert_eq!(model.size(), 3);
        assert_eq!(model.edges().len(), 2);
    }

    #[test]
    fn self_loops_counted() {
        let log = build(&[&["a", "a", "b"]]);
        let model = discover(&log, DiscoveryOptions::default());
        assert_eq!(model.self_loops(), 1);
    }

    #[test]
    fn mixed_branches_get_xor_over_clusters() {
        // s → {a, b} concurrent; s → c exclusive alternative.
        let log = build(&[&["s", "a", "b", "e"], &["s", "b", "a", "e"], &["s", "c", "e"]]);
        let model = discover(&log, DiscoveryOptions::default());
        let kinds: Vec<GatewayKind> = model.splits().iter().map(|g| g.kind).collect();
        assert!(kinds.contains(&GatewayKind::And));
        assert!(kinds.contains(&GatewayKind::Xor));
    }

    #[test]
    fn dot_contains_tasks() {
        let log = build(&[&["a", "b"]]);
        let model = discover(&log, DiscoveryOptions::default());
        let dot = model.to_dot(&log);
        assert!(dot.contains("\"a\" -> \"b\""));
    }
}
