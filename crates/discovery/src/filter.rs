//! Percentile-based DFG filtering.
//!
//! Keeps the most frequent fraction of directly-follows edges (e.g. the
//! "80/20" DFG of the paper's Figure 1 keeps 80% and omits the 20% least
//! frequent) while always retaining, for every node, its most frequent
//! incoming and outgoing edge — Split Miner's connectivity safeguard.

use gecco_eventlog::{ClassId, Dfg, EventLog};
use std::collections::HashSet;

/// A filtered view of a DFG: a subset of its edges.
#[derive(Debug, Clone)]
pub struct FilteredDfg {
    num_nodes: usize,
    edges: Vec<(ClassId, ClassId, u64)>,
    edge_set: HashSet<(ClassId, ClassId)>,
}

impl FilteredDfg {
    /// Number of nodes of the underlying DFG.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The retained edges.
    pub fn edges(&self) -> &[(ClassId, ClassId, u64)] {
        &self.edges
    }

    /// Number of retained edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Whether the edge `a → b` was retained.
    pub fn contains(&self, a: ClassId, b: ClassId) -> bool {
        self.edge_set.contains(&(a, b))
    }

    /// Retained successors of `a`.
    pub fn successors(&self, a: ClassId) -> impl Iterator<Item = ClassId> + '_ {
        self.edges.iter().filter(move |(x, _, _)| *x == a).map(|(_, y, _)| *y)
    }

    /// Retained predecessors of `a`.
    pub fn predecessors(&self, a: ClassId) -> impl Iterator<Item = ClassId> + '_ {
        self.edges.iter().filter(move |(_, y, _)| *y == a).map(|(x, _, _)| *x)
    }

    /// Renders the filtered graph in Graphviz DOT format.
    pub fn to_dot(&self, log: &EventLog) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph dfg {\n  rankdir=LR;\n  node [shape=box];\n");
        for (a, b, c) in &self.edges {
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\" [label=\"{}\"];",
                log.class_name(*a),
                log.class_name(*b),
                c
            );
        }
        out.push_str("}\n");
        out
    }
}

/// Filters `dfg`, keeping (at least) the `keep_fraction` most frequent
/// edges plus each node's strongest incoming/outgoing edge.
pub fn filter_dfg(dfg: &Dfg, keep_fraction: f64) -> FilteredDfg {
    let mut all: Vec<(ClassId, ClassId, u64)> = dfg.edges().collect();
    all.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| (a.0, a.1).cmp(&(b.0, b.1))));
    let keep = ((all.len() as f64 * keep_fraction).ceil() as usize).min(all.len());
    let mut retained: HashSet<(ClassId, ClassId)> =
        all.iter().take(keep).map(|(a, b, _)| (*a, *b)).collect();
    // Connectivity safeguard: strongest in/out edge per node.
    for n in dfg.nodes() {
        if dfg.class_count(n) == 0 {
            continue;
        }
        if let Some(best_out) = dfg.successors(n).max_by_key(|&s| (dfg.count(n, s), s)) {
            retained.insert((n, best_out));
        }
        if let Some(best_in) = dfg.predecessors(n).max_by_key(|&p| (dfg.count(p, n), p)) {
            retained.insert((best_in, n));
        }
    }
    let edges: Vec<(ClassId, ClassId, u64)> =
        all.into_iter().filter(|(a, b, _)| retained.contains(&(*a, *b))).collect();
    FilteredDfg { num_nodes: dfg.num_nodes(), edge_set: retained, edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecco_eventlog::LogBuilder;

    fn log_with_frequencies() -> gecco_eventlog::EventLog {
        let mut b = LogBuilder::new();
        // a→b 10 times, a→c 1 time, b→d and c→d.
        for i in 0..10 {
            b.trace(&format!("t{i}"))
                .event("a")
                .unwrap()
                .event("b")
                .unwrap()
                .event("d")
                .unwrap()
                .done();
        }
        b.trace("rare").event("a").unwrap().event("c").unwrap().event("d").unwrap().done();
        b.build()
    }

    #[test]
    fn keeps_most_frequent_edges() {
        let log = log_with_frequencies();
        let dfg = Dfg::from_log(&log);
        let filtered = filter_dfg(&dfg, 0.5);
        let a = log.class_by_name("a").unwrap();
        let b = log.class_by_name("b").unwrap();
        assert!(filtered.contains(a, b));
        assert!(filtered.num_edges() <= dfg.num_edges());
    }

    #[test]
    fn connectivity_safeguard_keeps_rare_nodes_attached() {
        let log = log_with_frequencies();
        let dfg = Dfg::from_log(&log);
        let filtered = filter_dfg(&dfg, 0.25);
        let c = log.class_by_name("c").unwrap();
        // c's only in/out edges survive even though they are rare.
        assert!(filtered.predecessors(c).count() >= 1);
        assert!(filtered.successors(c).count() >= 1);
    }

    #[test]
    fn full_fraction_keeps_everything() {
        let log = log_with_frequencies();
        let dfg = Dfg::from_log(&log);
        let filtered = filter_dfg(&dfg, 1.0);
        assert_eq!(filtered.num_edges(), dfg.num_edges());
    }

    #[test]
    fn dot_export() {
        let log = log_with_frequencies();
        let dfg = Dfg::from_log(&log);
        let dot = filter_dfg(&dfg, 1.0).to_dot(&log);
        assert!(dot.contains("\"a\" -> \"b\""));
    }
}
