//! Concurrency and loop oracle over the (filtered) DFG.
//!
//! Split Miner's directly-follows heuristics: two classes with edges in
//! both directions are *concurrent* when their frequencies are balanced
//! (relative imbalance below `epsilon`) and form a *short loop* otherwise;
//! self-loops are tracked separately.

use crate::filter::FilteredDfg;
use gecco_eventlog::{ClassId, Dfg};

/// Behavioral relation between two event classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// No directly-follows edge in either direction.
    None,
    /// Edge in exactly one direction: causal ordering.
    Causal,
    /// Both directions, balanced: interleaved/concurrent execution.
    Concurrent,
    /// Both directions, unbalanced: repetition (short loop).
    Loop,
}

/// Classifies class pairs by their directly-follows pattern.
#[derive(Debug)]
pub struct ConcurrencyOracle<'a> {
    dfg: &'a Dfg,
    filtered: &'a FilteredDfg,
    epsilon: f64,
}

impl<'a> ConcurrencyOracle<'a> {
    /// `epsilon` is the maximum relative imbalance for concurrency
    /// (Split Miner defaults to values around 0.3).
    pub fn new(dfg: &'a Dfg, filtered: &'a FilteredDfg, epsilon: f64) -> Self {
        ConcurrencyOracle { dfg, filtered, epsilon }
    }

    /// The relation between `a` and `b` (symmetric for
    /// concurrent/loop, directional reading for causal: `a` then `b`).
    pub fn relation(&self, a: ClassId, b: ClassId) -> Relation {
        if a == b {
            return if self.filtered.contains(a, a) { Relation::Loop } else { Relation::None };
        }
        let ab = self.filtered.contains(a, b);
        let ba = self.filtered.contains(b, a);
        match (ab, ba) {
            (false, false) => Relation::None,
            (true, false) | (false, true) => Relation::Causal,
            (true, true) => {
                let f_ab = self.dfg.count(a, b) as f64;
                let f_ba = self.dfg.count(b, a) as f64;
                let imbalance = (f_ab - f_ba).abs() / (f_ab + f_ba);
                if imbalance < self.epsilon {
                    Relation::Concurrent
                } else {
                    Relation::Loop
                }
            }
        }
    }

    /// Whether `a` and `b` are concurrent.
    pub fn concurrent(&self, a: ClassId, b: ClassId) -> bool {
        self.relation(a, b) == Relation::Concurrent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::filter_dfg;
    use gecco_eventlog::{Dfg, EventLog, LogBuilder};

    fn build(traces: &[&[&str]]) -> EventLog {
        let mut b = LogBuilder::new();
        for (i, t) in traces.iter().enumerate() {
            let mut tb = b.trace(&format!("t{i}"));
            for cls in *t {
                tb = tb.event(cls).unwrap();
            }
            tb.done();
        }
        b.build()
    }

    #[test]
    fn balanced_bidirectional_is_concurrent() {
        // a/b interleave both ways equally often.
        let log = build(&[&["s", "a", "b", "e"], &["s", "b", "a", "e"]]);
        let dfg = Dfg::from_log(&log);
        let filtered = filter_dfg(&dfg, 1.0);
        let oracle = ConcurrencyOracle::new(&dfg, &filtered, 0.3);
        let a = log.class_by_name("a").unwrap();
        let b = log.class_by_name("b").unwrap();
        assert_eq!(oracle.relation(a, b), Relation::Concurrent);
        assert!(oracle.concurrent(b, a));
    }

    #[test]
    fn unbalanced_bidirectional_is_loop() {
        // b→a happens once (a retry), a→b five times.
        let mut traces: Vec<Vec<&str>> = vec![vec!["a", "b"]; 5];
        traces.push(vec!["a", "b", "a", "b"]);
        let refs: Vec<&[&str]> = traces.iter().map(|t| t.as_slice()).collect();
        let log = build(&refs);
        let dfg = Dfg::from_log(&log);
        let filtered = filter_dfg(&dfg, 1.0);
        let oracle = ConcurrencyOracle::new(&dfg, &filtered, 0.3);
        let a = log.class_by_name("a").unwrap();
        let b = log.class_by_name("b").unwrap();
        assert_eq!(oracle.relation(a, b), Relation::Loop);
    }

    #[test]
    fn single_direction_is_causal_and_absence_is_none() {
        let log = build(&[&["a", "b"], &["c"]]);
        let dfg = Dfg::from_log(&log);
        let filtered = filter_dfg(&dfg, 1.0);
        let oracle = ConcurrencyOracle::new(&dfg, &filtered, 0.3);
        let a = log.class_by_name("a").unwrap();
        let b = log.class_by_name("b").unwrap();
        let c = log.class_by_name("c").unwrap();
        assert_eq!(oracle.relation(a, b), Relation::Causal);
        assert_eq!(oracle.relation(a, c), Relation::None);
    }

    #[test]
    fn self_loop_detection() {
        let log = build(&[&["a", "a", "b"]]);
        let dfg = Dfg::from_log(&log);
        let filtered = filter_dfg(&dfg, 1.0);
        let oracle = ConcurrencyOracle::new(&dfg, &filtered, 0.3);
        let a = log.class_by_name("a").unwrap();
        let b = log.class_by_name("b").unwrap();
        assert_eq!(oracle.relation(a, a), Relation::Loop);
        assert_eq!(oracle.relation(b, b), Relation::None);
    }
}
