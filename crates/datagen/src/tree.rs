//! Stochastic process trees and their simulation into event logs.

use gecco_eventlog::{EventLog, LogBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An activity (leaf) of a process tree: one event class plus the attribute
/// distributions its events draw from.
#[derive(Debug, Clone)]
pub struct Activity {
    /// Event-class name (`concept:name`).
    pub name: String,
    /// Executing role (`org:role`).
    pub role: String,
    /// Mean duration in seconds; events carry `duration ~ U[0.5·m, 1.5·m]`.
    pub duration_mean: f64,
    /// Mean cost; events carry integer `cost ~ U[0.5·m, 1.5·m]`.
    pub cost_mean: f64,
    /// Originating system, stored as the class-level attribute `system`
    /// (only some logs have one — cf. the paper's BL3 footnote).
    pub system: Option<String>,
}

impl Activity {
    /// A plain activity with defaults (role "worker", duration 60 s, cost 100).
    pub fn new(name: &str) -> Activity {
        Activity {
            name: name.to_string(),
            role: "worker".to_string(),
            duration_mean: 60.0,
            cost_mean: 100.0,
            system: None,
        }
    }

    /// Sets the role.
    pub fn role(mut self, role: &str) -> Activity {
        self.role = role.to_string();
        self
    }

    /// Sets the mean duration (seconds).
    pub fn duration(mut self, mean: f64) -> Activity {
        self.duration_mean = mean;
        self
    }

    /// Sets the mean cost.
    pub fn cost(mut self, mean: f64) -> Activity {
        self.cost_mean = mean;
        self
    }

    /// Sets the originating system.
    pub fn system(mut self, system: &str) -> Activity {
        self.system = Some(system.to_string());
        self
    }
}

/// A block-structured stochastic process model.
#[derive(Debug, Clone)]
pub enum ProcessTree {
    /// A leaf task.
    Task(Activity),
    /// Children in order.
    Sequence(Vec<ProcessTree>),
    /// Weighted exclusive choice.
    Exclusive(Vec<(f64, ProcessTree)>),
    /// Interleaved execution of all children.
    Parallel(Vec<ProcessTree>),
    /// `body (redo body)*`: after the body, repeat via `redo` with
    /// probability `repeat_prob`, at most `max_repeats` times.
    Loop {
        /// The main body.
        body: Box<ProcessTree>,
        /// The path leading back into the body.
        redo: Box<ProcessTree>,
        /// Probability of taking the redo path after each body execution.
        repeat_prob: f64,
        /// Hard repeat cap (keeps traces finite).
        max_repeats: usize,
    },
}

impl ProcessTree {
    /// Convenience leaf constructor.
    pub fn task(activity: Activity) -> ProcessTree {
        ProcessTree::Task(activity)
    }

    /// All activities of the tree, in definition order (may repeat if the
    /// same class appears in several leaves).
    pub fn activities(&self) -> Vec<&Activity> {
        let mut out = Vec::new();
        self.collect_activities(&mut out);
        out
    }

    fn collect_activities<'a>(&'a self, out: &mut Vec<&'a Activity>) {
        match self {
            ProcessTree::Task(a) => out.push(a),
            ProcessTree::Sequence(cs) | ProcessTree::Parallel(cs) => {
                for c in cs {
                    c.collect_activities(out);
                }
            }
            ProcessTree::Exclusive(cs) => {
                for (_, c) in cs {
                    c.collect_activities(out);
                }
            }
            ProcessTree::Loop { body, redo, .. } => {
                body.collect_activities(out);
                redo.collect_activities(out);
            }
        }
    }

    /// Samples one execution: the ordered activity sequence of a trace.
    pub(crate) fn sample<'a>(&'a self, rng: &mut StdRng, out: &mut Vec<&'a Activity>) {
        match self {
            ProcessTree::Task(a) => out.push(a),
            ProcessTree::Sequence(cs) => {
                for c in cs {
                    c.sample(rng, out);
                }
            }
            ProcessTree::Exclusive(cs) => {
                let total: f64 = cs.iter().map(|(w, _)| *w).sum();
                let mut pick = rng.random::<f64>() * total;
                for (w, c) in cs {
                    pick -= w;
                    if pick <= 0.0 {
                        c.sample(rng, out);
                        return;
                    }
                }
                if let Some((_, last)) = cs.last() {
                    last.sample(rng, out);
                }
            }
            ProcessTree::Parallel(cs) => {
                // Sample each child, then riffle-merge preserving orders.
                let mut branches: Vec<Vec<&Activity>> = Vec::with_capacity(cs.len());
                for c in cs {
                    let mut b = Vec::new();
                    c.sample(rng, &mut b);
                    branches.push(b);
                }
                let mut cursors = vec![0usize; branches.len()];
                let total: usize = branches.iter().map(Vec::len).sum();
                for _ in 0..total {
                    let remaining: Vec<usize> = branches
                        .iter()
                        .enumerate()
                        .filter(|(i, b)| cursors[*i] < b.len())
                        .map(|(i, _)| i)
                        .collect();
                    let pick = remaining[rng.random_range(0..remaining.len())];
                    out.push(branches[pick][cursors[pick]]);
                    cursors[pick] += 1;
                }
            }
            ProcessTree::Loop { body, redo, repeat_prob, max_repeats } => {
                body.sample(rng, out);
                let mut repeats = 0;
                while repeats < *max_repeats && rng.random::<f64>() < *repeat_prob {
                    redo.sample(rng, out);
                    body.sample(rng, out);
                    repeats += 1;
                }
            }
        }
    }
}

/// Options for [`simulate`].
#[derive(Debug, Clone)]
pub struct SimulationOptions {
    /// Number of traces to generate.
    pub num_traces: usize,
    /// RNG seed (simulation is fully deterministic given the seed).
    pub seed: u64,
    /// Log name stored as the log-level `concept:name`.
    pub log_name: String,
    /// Epoch milliseconds of the first case's start.
    pub start_time: i64,
}

impl Default for SimulationOptions {
    fn default() -> Self {
        SimulationOptions {
            num_traces: 100,
            seed: 42,
            log_name: "simulated".to_string(),
            start_time: 1_600_000_000_000, // 2020-09-13
        }
    }
}

/// Simulates `tree` into an event log.
///
/// Events carry `org:role`, `time:timestamp`, `duration` (seconds, float)
/// and `cost` (int); activities with a `system` attach it as a class-level
/// attribute.
pub fn simulate(tree: &ProcessTree, options: &SimulationOptions) -> EventLog {
    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut builder = prepare_builder(tree, options);
    for t in 0..options.num_traces {
        simulate_trace(tree, &mut rng, &mut builder, t, options);
    }
    builder.build()
}

/// A builder with the log attributes and every class (with class-level
/// attributes) registered up front — also fixes the class-id order, so
/// every chunk of a chunked simulation interns identically.
pub(crate) fn prepare_builder(tree: &ProcessTree, options: &SimulationOptions) -> LogBuilder {
    let mut builder = LogBuilder::new();
    builder.log_attr_str("concept:name", &options.log_name);
    for a in tree.activities() {
        builder.class(&a.name).expect("class limit");
        if let Some(system) = &a.system {
            builder.class_attr_str(&a.name, "system", system).expect("class limit");
        }
    }
    builder
}

/// Simulates the `t`-th trace into `builder`, advancing `rng` exactly as
/// [`simulate`] does — the chunked pipeline carries one rng across chunk
/// boundaries, so chunk concatenation reproduces the monolithic log bit
/// for bit.
pub(crate) fn simulate_trace(
    tree: &ProcessTree,
    rng: &mut StdRng,
    builder: &mut LogBuilder,
    t: usize,
    options: &SimulationOptions,
) {
    let mut steps = Vec::new();
    tree.sample(rng, &mut steps);
    // Cases arrive ~10 minutes apart.
    let mut clock = options.start_time + (t as i64) * 600_000;
    let mut tb = builder.trace(&format!("case-{t}"));
    for activity in steps {
        let duration = activity.duration_mean * (0.5 + rng.random::<f64>());
        let cost = (activity.cost_mean * (0.5 + rng.random::<f64>())).round() as i64;
        clock += (duration * 1000.0) as i64;
        tb = tb
            .event_with(&activity.name, |e| {
                e.str("org:role", &activity.role)
                    .timestamp("time:timestamp", clock)
                    .float("duration", duration)
                    .int("cost", cost);
            })
            .expect("class limit");
    }
    tb.done();
}

#[cfg(test)]
mod tests {
    use super::*;
    use ProcessTree as T;

    fn act(name: &str) -> T {
        T::task(Activity::new(name))
    }

    fn opts(n: usize, seed: u64) -> SimulationOptions {
        SimulationOptions { num_traces: n, seed, ..Default::default() }
    }

    #[test]
    fn sequence_preserves_order() {
        let tree = T::Sequence(vec![act("a"), act("b"), act("c")]);
        let log = simulate(&tree, &opts(5, 1));
        assert_eq!(log.traces().len(), 5);
        for t in log.traces() {
            assert_eq!(log.format_trace(t), "⟨a, b, c⟩");
        }
    }

    #[test]
    fn exclusive_respects_weights() {
        let tree = T::Exclusive(vec![(0.9, act("often")), (0.1, act("rare"))]);
        let log = simulate(&tree, &opts(500, 2));
        let often = log.class_by_name("often").unwrap();
        let dfg = gecco_eventlog::Dfg::from_log(&log);
        let f = dfg.class_count(often) as f64 / 500.0;
        assert!((0.8..1.0).contains(&f), "expected ≈0.9 frequency, got {f}");
    }

    #[test]
    fn parallel_interleaves_both_orders() {
        let tree = T::Parallel(vec![act("x"), act("y")]);
        let log = simulate(&tree, &opts(100, 3));
        let dfg = gecco_eventlog::Dfg::from_log(&log);
        let x = log.class_by_name("x").unwrap();
        let y = log.class_by_name("y").unwrap();
        assert!(dfg.follows(x, y) && dfg.follows(y, x), "both interleavings occur");
    }

    #[test]
    fn loop_repeats_are_bounded() {
        let tree = T::Loop {
            body: Box::new(act("b")),
            redo: Box::new(act("r")),
            repeat_prob: 0.99,
            max_repeats: 3,
        };
        let log = simulate(&tree, &opts(50, 4));
        for t in log.traces() {
            assert!(t.len() <= 1 + 3 * 2, "body + 3·(redo body) at most");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let tree = T::Exclusive(vec![(0.5, act("a")), (0.5, act("b"))]);
        let l1 = simulate(&tree, &opts(50, 7));
        let l2 = simulate(&tree, &opts(50, 7));
        for (a, b) in l1.traces().iter().zip(l2.traces()) {
            assert_eq!(l1.format_trace(a), l2.format_trace(b));
        }
        let l3 = simulate(&tree, &opts(50, 8));
        let same = l1
            .traces()
            .iter()
            .zip(l3.traces())
            .all(|(a, b)| l1.format_trace(a) == l3.format_trace(b));
        assert!(!same, "different seeds should differ somewhere");
    }

    #[test]
    fn events_carry_attributes_and_monotone_timestamps() {
        let tree = T::Sequence(vec![
            T::task(Activity::new("a").role("clerk").duration(10.0).cost(50.0)),
            T::task(Activity::new("b").role("boss").system("S")),
        ]);
        let log = simulate(&tree, &opts(3, 5));
        let t = &log.traces()[0];
        let ts_key = log.std_keys().timestamp;
        let ts: Vec<i64> = t.events().iter().map(|e| e.timestamp(ts_key).unwrap()).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        let role = t.events()[0].attribute(log.std_keys().role).unwrap().as_symbol().unwrap();
        assert_eq!(log.resolve(role), "clerk");
        assert!(t.events()[0].attribute(log.key("duration").unwrap()).is_some());
        assert!(t.events()[0].attribute(log.key("cost").unwrap()).is_some());
        // Class-level system attribute.
        let b = log.class_by_name("b").unwrap();
        let sys = log.key("system").unwrap();
        assert!(log.classes().info(b).attribute(sys).is_some());
        let a = log.class_by_name("a").unwrap();
        assert!(log.classes().info(a).attribute(sys).is_none());
    }
}
