//! A BPI-2017-like loan-application log for the case study (§VI-D).
//!
//! The paper's case study uses the BPI Challenge 2017 log: 24 event
//! classes originating from three IT systems — application handling (`A`),
//! the offer system (`O`) and a generic workflow system (`W`) — with heavy
//! interleaving between them (Figure 1's spaghetti model). This generator
//! reproduces that structure: the same 24 class names, the `origin`
//! class-level attribute, offer rework loops, validation loops and workflow
//! steps running concurrently to the main flow.

use crate::tree::{simulate, Activity, ProcessTree, SimulationOptions};
use gecco_eventlog::EventLog;

fn a(name: &str, origin: &str, role: &str) -> ProcessTree {
    ProcessTree::Task(Activity::new(name).role(role).system(origin).duration(300.0).cost(120.0))
}

/// Generates the loan log (`num_traces` cases, deterministic per seed).
pub fn loan_log(num_traces: usize, seed: u64) -> EventLog {
    use ProcessTree as T;
    // Application intake.
    let intake = T::Sequence(vec![
        a("A_Create Application", "A", "system"),
        T::Exclusive(vec![
            (0.65, a("A_Submitted", "A", "applicant")),
            (
                0.35,
                T::Sequence(vec![
                    a("W_Handle leads", "W", "clerk"),
                    a("A_Submitted", "A", "applicant"),
                ]),
            ),
        ]),
        a("A_Concept", "A", "system"),
        a("A_Accepted", "A", "clerk"),
    ]);
    // Offer creation with optional repetition (multiple offers per case).
    let offer_once = T::Sequence(vec![
        a("O_Create Offer", "O", "clerk"),
        a("O_Created", "O", "system"),
        T::Exclusive(vec![
            (0.9, a("O_Sent (mail and online)", "O", "system")),
            (0.1, a("O_Sent (online only)", "O", "system")),
        ]),
    ]);
    let offers = T::Loop {
        body: Box::new(offer_once),
        redo: Box::new(T::Exclusive(vec![
            (0.6, T::Sequence(vec![])),
            (0.4, a("O_Cancelled", "O", "system")),
        ])),
        repeat_prob: 0.45,
        max_repeats: 3,
    };
    // Completion and validation, with an incompleteness loop.
    let validation_core = T::Sequence(vec![
        a("A_Complete", "A", "clerk"),
        a("W_Complete application", "W", "clerk"),
        a("O_Returned", "O", "applicant"),
        a("A_Validating", "A", "validator"),
        a("W_Validate application", "W", "validator"),
    ]);
    let incomplete_redo = T::Sequence(vec![
        a("A_Incomplete", "A", "validator"),
        a("W_Call incomplete files", "W", "clerk"),
    ]);
    let validation = T::Loop {
        body: Box::new(validation_core),
        redo: Box::new(incomplete_redo),
        repeat_prob: 0.5,
        max_repeats: 3,
    };
    // Occasional fraud check runs in parallel with validation.
    let validation_block = T::Exclusive(vec![
        (0.9, validation.clone()),
        (0.1, T::Parallel(vec![validation, a("W_Assess potential fraud", "W", "expert")])),
    ]);
    // Outcome.
    let outcome = T::Exclusive(vec![
        (0.5, T::Sequence(vec![a("O_Accepted", "O", "system"), a("A_Pending", "A", "system")])),
        (0.25, T::Sequence(vec![a("A_Denied", "A", "clerk"), a("O_Refused", "O", "system")])),
        (0.25, T::Sequence(vec![a("A_Cancelled", "A", "system"), a("O_Cancelled", "O", "system")])),
    ]);
    // Follow-up calls interleave with the whole offer/validation tail,
    // which is what tangles the DFG of Figure 1.
    let calls = T::Sequence(vec![
        T::Exclusive(vec![
            (0.5, a("W_Call after offers", "W", "clerk")),
            (0.5, T::Sequence(vec![])),
        ]),
        T::Exclusive(vec![
            (0.3, a("W_Call incomplete files", "W", "clerk")),
            (0.7, T::Sequence(vec![])),
        ]),
        T::Exclusive(vec![(0.25, a("W_Handle leads", "W", "clerk")), (0.75, T::Sequence(vec![]))]),
    ]);
    let tail = T::Parallel(vec![T::Sequence(vec![offers, validation_block]), calls]);
    let tree = T::Sequence(vec![intake, tail, outcome]);
    let log = simulate(
        &tree,
        &SimulationOptions {
            num_traces,
            seed,
            log_name: "loan-application (BPI-2017-like)".into(),
            ..Default::default()
        },
    );
    debug_assert_eq!(log.num_classes(), 24);
    log
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecco_eventlog::{Dfg, LogStats};

    #[test]
    fn has_24_classes_from_three_systems() {
        let log = loan_log(200, 17);
        assert_eq!(log.num_classes(), 24, "BPI-2017 has 24 event classes");
        let key = log.key("system").unwrap();
        let mut origins = std::collections::HashSet::new();
        for c in log.classes().ids() {
            let v = log.classes().info(c).attribute(key).unwrap();
            origins.insert(log.resolve(v.as_symbol().unwrap()).to_string());
            let name = log.class_name(c);
            let origin = log.resolve(v.as_symbol().unwrap());
            assert!(name.starts_with(origin), "{name} should start with {origin}_");
        }
        assert_eq!(origins.len(), 3);
    }

    #[test]
    fn is_spaghetti_like() {
        // The paper stresses 160 DFG edges for 24 classes; our simulation
        // should be similarly dense relative to its size.
        let log = loan_log(300, 17);
        let stats = LogStats::from_log(&log);
        assert!(
            stats.num_dfg_edges >= 80,
            "expected a dense DFG, got {} edges",
            stats.num_dfg_edges
        );
        assert!(stats.num_variants > 50, "high variability, got {}", stats.num_variants);
    }

    #[test]
    fn starts_with_application_creation() {
        let log = loan_log(50, 3);
        let dfg = Dfg::from_log(&log);
        let create = log.class_by_name("A_Create Application").unwrap();
        assert_eq!(dfg.start_count(create), 50);
    }

    #[test]
    fn deterministic() {
        let a = loan_log(30, 5);
        let b = loan_log(30, 5);
        assert_eq!(LogStats::from_log(&a), LogStats::from_log(&b));
    }
}
