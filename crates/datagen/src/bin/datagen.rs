//! Streams a synthetic production-scale XES log to disk.
//!
//! ```text
//! datagen [--traces N] [--seed S] [--chunk C] [--preset NAME] [--out PATH]
//! ```
//!
//! Memory stays proportional to one chunk regardless of `--traces`: the
//! simulation is chunked ([`gecco_datagen::simulate_chunks`]) and the XES
//! serialization is streamed. The run ends with a one-line report of
//! traces, events, bytes and the process peak RSS (`VmHWM`), which is what
//! the CI smoke asserts on.

use gecco_datagen::{production_tree, write_xes_stream, ProcessTree, SimulationOptions};
use std::io::{BufWriter, Write};
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    traces: usize,
    seed: u64,
    chunk: usize,
    preset: String,
    out: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            traces: 1_000_000,
            seed: 7,
            chunk: 10_000,
            preset: "production".to_string(),
            out: None,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--traces" => {
                args.traces = value("--traces")?.parse().map_err(|e| format!("--traces: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--chunk" => {
                args.chunk = value("--chunk")?.parse().map_err(|e| format!("--chunk: {e}"))?;
            }
            "--preset" => args.preset = value("--preset")?,
            "--out" => args.out = Some(value("--out")?),
            "--help" | "-h" => {
                println!(
                    "usage: datagen [--traces N] [--seed S] [--chunk C] \
                     [--preset production|wide|small|lean] [--out PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// The process tree behind each preset: (classes, target trace length).
fn preset_tree(name: &str, seed: u64) -> Option<ProcessTree> {
    let (classes, target_len) = match name {
        "production" => (40, 12),
        "wide" => (120, 25),
        "small" => (12, 6),
        // CI ingestion smoke: short traces keep the materialized log (and
        // its abstraction) inside the smoke's hard RSS ceiling.
        "lean" => (8, 3),
        _ => return None,
    };
    Some(production_tree(classes, target_len, seed))
}

/// Peak resident set size of this process in kB, from `/proc/self/status`.
fn vm_hwm_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("datagen: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(tree) = preset_tree(&args.preset, args.seed) else {
        eprintln!("datagen: unknown preset {:?} (production|wide|small|lean)", args.preset);
        return ExitCode::FAILURE;
    };
    let options = SimulationOptions {
        num_traces: args.traces,
        seed: args.seed,
        log_name: format!("synthetic-{}-{}", args.preset, args.traces),
        ..Default::default()
    };

    let started = Instant::now();
    let result = match &args.out {
        Some(path) => {
            let file = match std::fs::File::create(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("datagen: cannot create {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut out = BufWriter::new(file);
            write_xes_stream(&tree, &options, args.chunk, &mut out)
                .and_then(|stats| out.flush().map(|()| stats))
        }
        None => {
            // No output path: stream into a sink, still exercising the
            // full simulate-and-serialize path (for memory smoke runs).
            let mut out = std::io::sink();
            write_xes_stream(&tree, &options, args.chunk, &mut out)
        }
    };
    let stats = match result {
        Ok(s) => s,
        Err(e) => {
            eprintln!("datagen: write failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let elapsed = started.elapsed().as_secs_f64();
    let rate = if elapsed > 0.0 { stats.events as f64 / elapsed } else { f64::INFINITY };
    println!(
        "traces={} events={} bytes={} chunks={} seconds={elapsed:.2} events_per_sec={rate:.0}",
        stats.traces, stats.events, stats.bytes, stats.chunks
    );
    match vm_hwm_kb() {
        Some(kb) => println!("vm_hwm_kb={kb}"),
        None => println!("vm_hwm_kb=unavailable"),
    }
    ExitCode::SUCCESS
}
