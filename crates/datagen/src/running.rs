//! The paper's running example (Table I), with the attributes the
//! motivating constraints need.

use gecco_eventlog::{EventLog, LogBuilder};

/// Builds the Table I log: four traces over eight classes. Events carry
/// `org:role` (clerk for all steps except the manager's `acc`/`rej`),
/// timestamps one minute apart, `duration = 10 + position` seconds and
/// `cost = 100·(position+1)`.
pub fn running_example() -> EventLog {
    let role_of = |c: &str| match c {
        "acc" | "rej" => "manager",
        _ => "clerk",
    };
    let mut b = LogBuilder::new();
    b.log_attr_str("concept:name", "running-example");
    let traces: &[&[&str]] = &[
        &["rcp", "ckc", "acc", "prio", "inf", "arv"],
        &["rcp", "ckt", "rej", "prio", "arv", "inf"],
        &["rcp", "ckc", "acc", "inf", "arv"],
        &["rcp", "ckc", "rej", "rcp", "ckt", "acc", "prio", "arv", "inf"],
    ];
    for (i, t) in traces.iter().enumerate() {
        let mut tb = b.trace(&format!("σ{}", i + 1));
        for (j, cls) in t.iter().enumerate() {
            tb = tb
                .event_with(cls, |e| {
                    e.str("org:role", role_of(cls))
                        .timestamp("time:timestamp", (i as i64) * 86_400_000 + (j as i64) * 60_000)
                        .float("duration", 10.0 + j as f64)
                        .int("cost", 100 * (j as i64 + 1));
                })
                .expect("only 8 classes");
        }
        tb.done();
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecco_eventlog::LogStats;

    #[test]
    fn matches_table_i() {
        let log = running_example();
        assert_eq!(log.traces().len(), 4);
        assert_eq!(log.num_classes(), 8);
        assert_eq!(log.format_trace(&log.traces()[0]), "⟨rcp, ckc, acc, prio, inf, arv⟩");
        assert_eq!(
            log.format_trace(&log.traces()[3]),
            "⟨rcp, ckc, rej, rcp, ckt, acc, prio, arv, inf⟩"
        );
        let stats = LogStats::from_log(&log);
        assert_eq!(stats.num_events, 6 + 6 + 5 + 9);
        assert_eq!(stats.num_variants, 4);
    }

    #[test]
    fn figure2_dfg_edges() {
        // Spot-check the DFG of Figure 2.
        let log = running_example();
        let dfg = gecco_eventlog::Dfg::from_log(&log);
        let id = |n: &str| log.class_by_name(n).unwrap();
        assert!(dfg.follows(id("rcp"), id("ckc")));
        assert!(dfg.follows(id("rcp"), id("ckt")));
        assert!(dfg.follows(id("rej"), id("rcp")), "the loop back on rejection");
        assert!(!dfg.follows(id("acc"), id("rcp")), "acceptance never restarts");
        assert!(dfg.follows(id("inf"), id("arv")) && dfg.follows(id("arv"), id("inf")));
    }

    #[test]
    fn roles_match_motivation() {
        let log = running_example();
        let role_key = log.std_keys().role;
        for t in log.traces() {
            for e in t.events() {
                let role = log.resolve(e.attribute(role_key).unwrap().as_symbol().unwrap());
                let name = log.class_name(e.class());
                if name == "acc" || name == "rej" {
                    assert_eq!(role, "manager");
                } else {
                    assert_eq!(role, "clerk");
                }
            }
        }
    }
}
