//! The 13-log evaluation collection (Table III shape).
//!
//! Each entry mirrors one row of the paper's Table III: the exact event-
//! class count, a trace count scaled down ~100× (the paper ran on a 768 GB
//! Xeon with 5-hour timeouts; we target minutes on a laptop), and control
//! flow generated from a seeded random process tree with choices,
//! concurrency and rework loops. Four of the thirteen logs carry the
//! class-level `system` attribute, matching the paper's footnote that the
//! class-attribute constraint `BL3` applies to 4 of 13 logs.

use crate::tree::{simulate, Activity, ProcessTree, SimulationOptions};
use gecco_eventlog::EventLog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How much of the full collection to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectionScale {
    /// Trace counts ≈ Table III / 100 — the default experiment scale.
    Full,
    /// Tiny logs for unit tests and smoke runs.
    Smoke,
}

/// One generated evaluation log plus its provenance.
#[derive(Debug)]
pub struct GeneratedLog {
    /// Reference tag mirroring the paper's citation (\[14\]…\[26\]).
    pub reference: &'static str,
    /// The generated log.
    pub log: EventLog,
    /// Whether classes carry the `system` class-level attribute (BL3).
    pub has_class_attribute: bool,
}

/// Table III rows: (reference, |C_L|, scaled traces, target trace length,
/// has class-level attribute, duration regime).
///
/// The duration regime controls feasibility of the M / N constraint sets:
/// `Lo` durations make `sum(duration) ≥ 101` fail for singleton instances
/// (M infeasible), `Hi` durations exceed `avg(duration) ≤ 5·10⁵` (N
/// infeasible), `Mid` satisfies both.
const SPECS: &[(&str, usize, usize, usize, bool, Durations)] = &[
    ("[14]", 11, 400, 4, false, Durations::Lo),
    ("[15]", 40, 250, 6, true, Durations::Mid),
    ("[16]", 39, 220, 10, false, Durations::Lo),
    ("[17]", 24, 315, 16, true, Durations::Mid),
    ("[18]", 39, 145, 40, false, Durations::Hi),
    ("[19]", 24, 130, 20, false, Durations::Mid),
    ("[20]", 8, 100, 15, false, Durations::Mid),
    ("[21]", 51, 70, 12, true, Durations::Lo),
    ("[22]", 4, 150, 4, false, Durations::Hi),
    ("[23]", 27, 140, 6, false, Durations::Lo),
    ("[24]", 16, 105, 14, true, Durations::Mid),
    ("[25]", 70, 90, 24, false, Durations::Lo),
    ("[26]", 29, 20, 55, false, Durations::Hi),
];

#[derive(Debug, Clone, Copy)]
enum Durations {
    Lo,
    Mid,
    Hi,
}

impl Durations {
    fn sample(self, rng: &mut StdRng) -> f64 {
        match self {
            // Many activities < 101 s: M's sum(duration) ≥ 101 often fails.
            Durations::Lo => 5.0 + rng.random::<f64>() * 150.0,
            // Comfortably above 101 s and below 5·10⁵.
            Durations::Mid => 150.0 + rng.random::<f64>() * 5_000.0,
            // Up to ~1.5·10⁶ s: N's avg(duration) ≤ 5·10⁵ often fails.
            Durations::Hi => 2_000.0 + rng.random::<f64>() * 1_500_000.0,
        }
    }
}

/// Generates the 13-log collection deterministically.
pub fn evaluation_collection(scale: CollectionScale) -> Vec<GeneratedLog> {
    SPECS
        .iter()
        .enumerate()
        .map(|(i, &(reference, classes, traces, target_len, has_attr, durations))| {
            let traces = match scale {
                CollectionScale::Full => traces,
                CollectionScale::Smoke => traces.min(25),
            };
            let seed = 0xBEEF + i as u64;
            let tree = random_tree(seed, classes, target_len, has_attr, durations);
            let log = simulate(
                &tree,
                &SimulationOptions {
                    num_traces: traces,
                    seed: seed ^ 0x5EED,
                    log_name: format!("synthetic-{}", reference.trim_matches(['[', ']'])),
                    ..Default::default()
                },
            );
            GeneratedLog { reference, log, has_class_attribute: has_attr }
        })
        .collect()
}

/// A seeded random process tree shaped like a production system: choices,
/// concurrency, rework loops, class-level `system` attributes and mid-range
/// durations. This is the model behind the million-trace scale runs
/// (`datagen` binary, `bench_scale`); the same `(num_classes, target_len,
/// seed)` always yields the same tree.
pub fn production_tree(num_classes: usize, target_len: usize, seed: u64) -> ProcessTree {
    random_tree(seed, num_classes, target_len, true, Durations::Mid)
}

/// Builds a random block-structured tree over exactly `num_classes`
/// distinct activities whose average trace length lands near `target_len`.
fn random_tree(
    seed: u64,
    num_classes: usize,
    target_len: usize,
    class_attr: bool,
    durations: Durations,
) -> ProcessTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let roles = ["clerk", "manager", "analyst", "system", "expert"];
    let systems = ["A", "O", "W"];
    let activities: Vec<Activity> = (0..num_classes)
        .map(|i| {
            let mut a = Activity::new(&format!("act_{i:02}"))
                .role(roles[rng.random_range(0..roles.len())])
                .duration(durations.sample(&mut rng))
                .cost(20.0 + rng.random::<f64>() * 480.0);
            if class_attr {
                a = a.system(systems[i % systems.len()]);
            }
            a
        })
        .collect();
    let body = build_block(&activities, &mut rng, 0);
    // A rework loop around the whole process tunes the trace length: one
    // pass emits roughly `visited ≈ 0.7·n` events (choices skip branches),
    // so repeat until the expected length matches the target.
    let per_pass = (num_classes as f64 * 0.7).max(1.0);
    let extra_passes = (target_len as f64 / per_pass - 1.0).max(0.0);
    let repeat_prob = (extra_passes / (extra_passes + 1.0)).clamp(0.0, 0.9);
    ProcessTree::Loop {
        body: Box::new(body),
        redo: Box::new(ProcessTree::Sequence(vec![])),
        repeat_prob,
        max_repeats: (2.0 * extra_passes).ceil() as usize + 1,
    }
}

/// Recursively arranges a slice of activities into nested blocks.
fn build_block(acts: &[Activity], rng: &mut StdRng, depth: usize) -> ProcessTree {
    if acts.len() == 1 {
        return ProcessTree::Task(acts[0].clone());
    }
    if acts.len() <= 3 || depth >= 4 {
        return ProcessTree::Sequence(acts.iter().map(|a| ProcessTree::Task(a.clone())).collect());
    }
    // Split into 2–4 parts.
    let parts = 2 + rng.random_range(0..=2usize.min(acts.len() / 2 - 1));
    let mut boundaries: Vec<usize> = (1..acts.len()).collect();
    // Pick part-1 random cut points.
    for i in (1..boundaries.len()).rev() {
        boundaries.swap(i, rng.random_range(0..=i));
    }
    let mut cuts: Vec<usize> = boundaries.into_iter().take(parts - 1).collect();
    cuts.sort_unstable();
    cuts.push(acts.len());
    let mut children = Vec::new();
    let mut start = 0;
    for &end in &cuts {
        if end > start {
            children.push(build_block(&acts[start..end], rng, depth + 1));
        }
        start = end;
    }
    match rng.random_range(0..10) {
        // Sequences dominate real processes.
        0..=4 => ProcessTree::Sequence(children),
        5..=6 => {
            let weighted = children.into_iter().map(|c| (0.3 + rng.random::<f64>(), c)).collect();
            ProcessTree::Exclusive(weighted)
        }
        7..=8 => ProcessTree::Parallel(children),
        _ => {
            let mut it = children.into_iter();
            let body = it.next().expect("at least two children");
            let rest: Vec<ProcessTree> = it.collect();
            let redo = if rest.len() == 1 {
                rest.into_iter().next().expect("one element")
            } else {
                ProcessTree::Sequence(rest)
            };
            ProcessTree::Loop {
                body: Box::new(body),
                redo: Box::new(redo),
                repeat_prob: 0.3,
                max_repeats: 2,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecco_eventlog::LogStats;

    #[test]
    fn class_counts_match_table_iii() {
        let collection = evaluation_collection(CollectionScale::Smoke);
        assert_eq!(collection.len(), 13);
        let expected = [11, 40, 39, 24, 39, 24, 8, 51, 4, 27, 16, 70, 29];
        for (generated, want) in collection.iter().zip(expected) {
            assert_eq!(
                generated.log.num_classes(),
                want,
                "class count mismatch for {}",
                generated.reference
            );
        }
    }

    #[test]
    fn exactly_four_logs_have_class_attributes() {
        let collection = evaluation_collection(CollectionScale::Smoke);
        let with_attr = collection.iter().filter(|g| g.has_class_attribute).count();
        assert_eq!(with_attr, 4, "paper: BL3 applies to 4 of 13 logs");
        for g in &collection {
            let key = g.log.key("system");
            let all_have = key.is_some_and(|k| {
                g.log.classes().ids().all(|c| g.log.classes().info(c).attribute(k).is_some())
            });
            assert_eq!(all_have, g.has_class_attribute, "{}", g.reference);
        }
    }

    #[test]
    fn logs_have_behavioral_variety() {
        for g in evaluation_collection(CollectionScale::Smoke) {
            let stats = LogStats::from_log(&g.log);
            assert!(stats.num_traces > 0);
            assert!(stats.num_variants >= 1);
            assert!(stats.avg_trace_len >= 1.0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = evaluation_collection(CollectionScale::Smoke);
        let b = evaluation_collection(CollectionScale::Smoke);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(LogStats::from_log(&x.log), LogStats::from_log(&y.log));
        }
    }

    #[test]
    fn trace_lengths_track_targets_loosely() {
        let collection = evaluation_collection(CollectionScale::Full);
        // Row [26] targets very long traces (~55), row [14] short ones (~4).
        let s26 = LogStats::from_log(&collection[12].log);
        let s14 = LogStats::from_log(&collection[0].log);
        assert!(
            s26.avg_trace_len > 3.0 * s14.avg_trace_len,
            "long traces {} vs short {}",
            s26.avg_trace_len,
            s14.avg_trace_len
        );
    }
}
