//! Simulation substrate for the paper's evaluation data.
//!
//! The original evaluation uses 13 real-life 4TU event logs plus the
//! BPI-2017 loan log; those cannot be redistributed or downloaded here, so
//! this crate generates statistically comparable logs from stochastic
//! process trees ([`tree`]): same per-log event-class counts as Table III,
//! scaled-down trace counts, realistic control flow (choices, concurrency,
//! rework loops) and the attributes the constraint sets of Table IV touch
//! (roles, durations, costs, timestamps, originating systems).
//!
//! * [`running_example`] — the paper's Table I log, verbatim;
//! * [`collection`] — the 13-log evaluation collection (Table III shape);
//! * [`loan`] — a BPI-2017-like loan-application log for the case study.

pub mod collection;
pub mod loan;
pub mod running;
pub mod stream;
pub mod tree;

pub use collection::{evaluation_collection, production_tree, CollectionScale, GeneratedLog};
pub use loan::loan_log;
pub use running::running_example;
pub use stream::{simulate_chunks, write_xes_stream, ChunkedSimulation, StreamStats};
pub use tree::{simulate, Activity, ProcessTree, SimulationOptions};
