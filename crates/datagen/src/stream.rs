//! Chunked simulation and streaming XES export.
//!
//! [`simulate`](crate::simulate) materializes the whole log in memory, which stops scaling
//! somewhere around a few million events. The chunked pipeline here keeps
//! memory proportional to one chunk: [`simulate_chunks`] yields the same
//! traces as [`simulate`](crate::simulate) — bit for bit, because one rng is carried across
//! chunk boundaries and every chunk's builder registers the classes in the
//! same order — and [`write_xes_stream`] serializes the chunks into a
//! single well-formed XES document as they are produced.

use crate::tree::{prepare_builder, simulate_trace, ProcessTree, SimulationOptions};
use gecco_eventlog::xes::{write_footer, write_header, write_traces};
use gecco_eventlog::EventLog;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{self, Write};

/// An iterator of simulated log chunks (see [`simulate_chunks`]).
pub struct ChunkedSimulation<'a> {
    tree: &'a ProcessTree,
    options: SimulationOptions,
    chunk_size: usize,
    rng: StdRng,
    next_trace: usize,
}

impl Iterator for ChunkedSimulation<'_> {
    type Item = EventLog;

    fn next(&mut self) -> Option<EventLog> {
        if self.next_trace >= self.options.num_traces {
            return None;
        }
        let end = (self.next_trace + self.chunk_size).min(self.options.num_traces);
        let mut builder = prepare_builder(self.tree, &self.options);
        for t in self.next_trace..end {
            simulate_trace(self.tree, &mut self.rng, &mut builder, t, &self.options);
        }
        self.next_trace = end;
        Some(builder.build())
    }
}

/// Simulates `options.num_traces` traces in chunks of `chunk_size`,
/// yielding each chunk as its own [`EventLog`]. Concatenating the chunks'
/// traces reproduces [`simulate`](crate::simulate)'s output exactly: the trace indices
/// (case ids, arrival clocks) are global and the rng state flows through.
///
/// [`simulate`](crate::simulate): crate::simulate
pub fn simulate_chunks(
    tree: &ProcessTree,
    options: SimulationOptions,
    chunk_size: usize,
) -> ChunkedSimulation<'_> {
    let rng = StdRng::seed_from_u64(options.seed);
    ChunkedSimulation { tree, options, chunk_size: chunk_size.max(1), rng, next_trace: 0 }
}

/// Counters from one streaming export.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Traces written.
    pub traces: usize,
    /// Events written.
    pub events: usize,
    /// Bytes of XES produced.
    pub bytes: u64,
    /// Chunks the simulation was split into.
    pub chunks: usize,
}

/// Simulates `tree` and streams the XES serialization into `out`, holding
/// at most one `chunk_size`-trace chunk in memory at a time. The bytes
/// written are identical to `write_string(&simulate(tree, options))` —
/// the header comes from the first chunk (whose builder registers every
/// class and log attribute up front) and each chunk contributes exactly
/// its `<trace>` elements.
pub fn write_xes_stream<W: Write>(
    tree: &ProcessTree,
    options: &SimulationOptions,
    chunk_size: usize,
    out: &mut W,
) -> io::Result<StreamStats> {
    let mut stats = StreamStats::default();
    let mut buffer = String::new();
    for chunk in simulate_chunks(tree, options.clone(), chunk_size) {
        buffer.clear();
        if stats.chunks == 0 {
            write_header(&mut buffer, &chunk);
        }
        write_traces(&mut buffer, &chunk);
        out.write_all(buffer.as_bytes())?;
        stats.chunks += 1;
        stats.traces += chunk.traces().len();
        stats.events += chunk.num_events();
        stats.bytes += buffer.len() as u64;
    }
    if stats.chunks == 0 {
        // Zero traces: the document still needs its prolog.
        let empty = prepare_builder(tree, options).build();
        write_header(&mut buffer, &empty);
        out.write_all(buffer.as_bytes())?;
        stats.bytes += buffer.len() as u64;
    }
    buffer.clear();
    write_footer(&mut buffer);
    out.write_all(buffer.as_bytes())?;
    stats.bytes += buffer.len() as u64;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use crate::tree::Activity;
    use gecco_eventlog::xes::{parse_str, write_string};
    use ProcessTree as T;

    fn sample_tree() -> ProcessTree {
        T::Sequence(vec![
            T::task(Activity::new("reg").role("clerk").system("S1")),
            T::Loop {
                body: Box::new(T::Exclusive(vec![
                    (0.7, T::task(Activity::new("check"))),
                    (
                        0.3,
                        T::Parallel(vec![T::task(Activity::new("a")), T::task(Activity::new("b"))]),
                    ),
                ])),
                redo: Box::new(T::task(Activity::new("redo"))),
                repeat_prob: 0.4,
                max_repeats: 3,
            },
            T::task(Activity::new("end").role("boss")),
        ])
    }

    fn opts(n: usize) -> SimulationOptions {
        SimulationOptions { num_traces: n, seed: 11, ..Default::default() }
    }

    #[test]
    fn chunked_simulation_matches_monolithic() {
        let tree = sample_tree();
        let whole = simulate(&tree, &opts(53));
        for chunk_size in [1, 7, 53, 100] {
            let mut position = 0usize;
            for chunk in simulate_chunks(&tree, opts(53), chunk_size) {
                for trace in chunk.traces() {
                    let reference = &whole.traces()[position];
                    assert_eq!(chunk.format_trace(trace), whole.format_trace(reference));
                    position += 1;
                }
            }
            assert_eq!(position, 53, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn streamed_xes_is_byte_identical_to_monolithic() {
        let tree = sample_tree();
        let reference = write_string(&simulate(&tree, &opts(29)));
        for chunk_size in [1, 4, 29, 64] {
            let mut streamed = Vec::new();
            let stats = write_xes_stream(&tree, &opts(29), chunk_size, &mut streamed).unwrap();
            assert_eq!(String::from_utf8(streamed).unwrap(), reference, "chunk {chunk_size}");
            assert_eq!(stats.traces, 29);
            assert_eq!(stats.bytes as usize, reference.len());
        }
    }

    #[test]
    fn streamed_xes_parses_back() {
        let tree = sample_tree();
        let mut streamed = Vec::new();
        let stats = write_xes_stream(&tree, &opts(200), 32, &mut streamed).unwrap();
        let back = parse_str(std::str::from_utf8(&streamed).unwrap()).unwrap();
        assert_eq!(back.traces().len(), 200);
        assert_eq!(back.num_events(), stats.events);
        // Class-level attributes survive the streamed header.
        let reg = back.class_by_name("reg").unwrap();
        let key = back.key("system").unwrap();
        assert!(back.classes().info(reg).attribute(key).is_some());
    }

    #[test]
    fn zero_traces_still_yields_a_valid_document() {
        let tree = sample_tree();
        let mut streamed = Vec::new();
        let stats = write_xes_stream(&tree, &opts(0), 8, &mut streamed).unwrap();
        assert_eq!(stats.traces, 0);
        let back = parse_str(std::str::from_utf8(&streamed).unwrap()).unwrap();
        assert_eq!(back.traces().len(), 0);
    }
}
