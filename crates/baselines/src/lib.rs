//! The three baselines of §VI-A / §VI-C.
//!
//! * [`graphdb`] + [`blq`] — **BL_Q**: the DFG is loaded into an in-memory
//!   property-graph store and *queried* for candidate groups with a
//!   Cypher-style variable-length path pattern; only class-based
//!   constraints are expressible. Replaces GECCO's Step 1.
//! * [`blp`] — **BL_P**: spectral partitioning of the DFG (normalized
//!   Laplacian over symmetrized directly-follows frequencies, eigen
//!   embedding, k-means) into a fixed number of groups; only strict
//!   grouping constraints are supported.
//! * [`blg`] — **BL_G**: greedy agglomerative grouping that repeatedly
//!   merges the pair of groups with the best distance improvement while
//!   respecting class- and instance-based constraints; grouping
//!   constraints cannot be enforced.

pub mod blg;
pub mod blp;
pub mod blq;
pub mod graphdb;

pub use blg::greedy_grouping;
pub use blp::spectral_partitioning;
pub use blq::query_candidates;
pub use graphdb::{NodeId, PathPattern, PropertyGraph, PropertyValue};
