//! BL_Q: candidate retrieval by graph querying.
//!
//! Replaces GECCO's Step 1: the DFG is loaded into the
//! [`crate::graphdb::PropertyGraph`] (node properties: class name plus all
//! class-level attributes; edge property: directly-follows frequency) and
//! queried with a variable-length path pattern whose `WHERE` clause encodes
//! the class-based constraints. Because "a DFG captures a log on the
//! class-level, BL_Q can only support class-based constraints" (§VI-A);
//! instance-based and grouping constraints are ignored by construction —
//! the selection step downstream still enforces grouping bounds.

use crate::graphdb::{NodeId, PathPattern, PropertyGraph, PropertyValue};
use gecco_constraints::CompiledConstraintSet;
use gecco_eventlog::{ClassId, ClassSet, Dfg, EvalContext, EventLog};
use std::collections::HashSet;

/// Loads the DFG of `log` into a property graph (one node per occurring
/// class, one edge per directly-follows pair).
pub fn dfg_to_graph(log: &EventLog, dfg: &Dfg) -> (PropertyGraph, Vec<ClassId>) {
    let mut graph = PropertyGraph::new();
    let classes: Vec<ClassId> = dfg.nodes().filter(|&c| dfg.class_count(c) > 0).collect();
    let mut node_of = std::collections::HashMap::new();
    for &c in &classes {
        let n = graph.add_node();
        node_of.insert(c, n);
        graph.set_node_property(n, "name", PropertyValue::Str(log.class_name(c).to_string()));
        graph.set_node_property(n, "frequency", PropertyValue::Int(dfg.class_count(c) as i64));
        for (key, value) in &log.classes().info(c).attributes {
            if let Some(sym) = value.as_symbol() {
                graph.set_node_property(
                    n,
                    log.resolve(*key),
                    PropertyValue::Str(log.resolve(sym).to_string()),
                );
            }
        }
    }
    for (a, b, count) in dfg.edges() {
        graph.add_edge(
            node_of[&a],
            node_of[&b],
            vec![("freq".to_string(), PropertyValue::Int(count as i64))],
        );
    }
    (graph, classes)
}

/// Runs the BL_Q candidate query: all simple DFG paths of bounded length
/// whose node set satisfies the class-based constraints, deduplicated into
/// groups. Singletons are always included so that the downstream exact
/// cover stays feasible whenever singletons satisfy the constraints.
pub fn query_candidates(
    ctx: &EvalContext<'_>,
    constraints: &CompiledConstraintSet,
    max_path_len: usize,
) -> Vec<ClassSet> {
    let log = ctx.log();
    let dfg = Dfg::from_log(log);
    let (graph, classes) = dfg_to_graph(log, &dfg);
    let class_of = |n: NodeId| classes[n.0 as usize];
    // The WHERE clause over the full path: node set satisfies R_C.
    let group_ok = |_: &PropertyGraph, path: &[NodeId]| {
        let group: ClassSet = path.iter().map(|&n| class_of(n)).collect();
        constraints.check_class(&group, ctx).is_ok()
    };
    let pattern = PathPattern {
        min_len: 1,
        max_len: max_path_len,
        // Dense DFGs have combinatorially many simple paths; a query LIMIT
        // keeps BL_Q tractable (mirroring how one would query Neo4j).
        limit: 100_000,
        node_filter: &|_, _| true,
        prefix_filter: &|_, _, _| true,
        path_filter: &group_ok,
    };
    let mut seen: HashSet<ClassSet> = HashSet::new();
    let mut out: Vec<ClassSet> = Vec::new();
    for path in graph.match_paths(&pattern) {
        let group: ClassSet = path.iter().map(|&n| class_of(n)).collect();
        if seen.insert(group) {
            out.push(group);
        }
    }
    // Singletons (length-1 paths) are produced by the query already; keep
    // any that the pattern may have filtered out only if they satisfy R_C.
    for &c in &classes {
        let g = ClassSet::singleton(c);
        if constraints.check_class(&g, ctx).is_ok() && seen.insert(g) {
            out.push(g);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecco_constraints::ConstraintSet;
    use gecco_datagen::running_example;

    fn compile(log: &EventLog, dsl: &str) -> CompiledConstraintSet {
        CompiledConstraintSet::compile(&ConstraintSet::parse(dsl).unwrap(), log).unwrap()
    }

    #[test]
    fn graph_mirrors_dfg() {
        let log = running_example();
        let dfg = Dfg::from_log(&log);
        let (graph, classes) = dfg_to_graph(&log, &dfg);
        assert_eq!(graph.num_nodes(), 8);
        assert_eq!(graph.num_edges(), dfg.num_edges());
        assert_eq!(classes.len(), 8);
        let n0 = NodeId(0);
        assert!(graph.node_property(n0, "name").is_some());
        assert!(graph.node_property(n0, "frequency").is_some());
    }

    #[test]
    fn query_respects_size_bound() {
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        let cs = compile(&log, "size(g) <= 2;");
        let candidates = query_candidates(&ctx, &cs, 5);
        assert!(candidates.iter().all(|g| g.len() <= 2));
        // All 8 singletons plus connected pairs.
        assert!(candidates.iter().filter(|g| g.len() == 1).count() == 8);
        assert!(candidates.iter().any(|g| g.len() == 2));
    }

    #[test]
    fn query_respects_cannot_link() {
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        let cs = compile(&log, "size(g) <= 3; cannot_link(\"rcp\", \"acc\");");
        let rcp = log.class_by_name("rcp").unwrap();
        let acc = log.class_by_name("acc").unwrap();
        for g in query_candidates(&ctx, &cs, 5) {
            assert!(!(g.contains(rcp) && g.contains(acc)));
        }
    }

    #[test]
    fn query_only_sees_connected_groups() {
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        let cs = compile(&log, "size(g) <= 2;");
        let candidates = query_candidates(&ctx, &cs, 5);
        // {ckc, ckt} is not connected by any DFG edge → not reachable as a
        // simple path → absent (this is BL_Q's structural weakness vs
        // Algorithm 3).
        let ckc = log.class_by_name("ckc").unwrap();
        let ckt = log.class_by_name("ckt").unwrap();
        let pair: ClassSet = [ckc, ckt].into_iter().collect();
        assert!(!candidates.contains(&pair));
    }
}
