//! BL_G: greedy agglomerative grouping.
//!
//! "BL_G starts by assigning all event classes from C_L to a set of
//! singleton groups G⁰. Then, in each iteration, BL_G merges those two
//! groups from Gⁱ that lead to the lowest overall distance without
//! resulting in any constraint violations. BL_G stops if the overall
//! distance cannot improve in an iteration" (§VI-A). It can handle class-
//! and instance-based constraints (it checks candidates against the log
//! directly) but not grouping constraints.

use gecco_constraints::CompiledConstraintSet;
use gecco_core::{DistanceOracle, Grouping};
use gecco_eventlog::{ClassSet, EvalContext};

/// Runs the greedy baseline; returns `None` when even the singleton
/// grouping violates the constraints (the greedy strategy then has no
/// feasible starting point — its key weakness for monotonic constraint
/// sets like `M`).
pub fn greedy_grouping(
    ctx: &EvalContext<'_>,
    constraints: &CompiledConstraintSet,
) -> Option<(Grouping, f64)> {
    let oracle = DistanceOracle::new(ctx, constraints.segmenter());
    let mut groups: Vec<ClassSet> = Grouping::singletons(ctx.log()).groups().to_vec();
    // The starting point itself must be feasible.
    if !groups.iter().all(|g| constraints.holds(g, ctx)) {
        return None;
    }
    let mut total: f64 = groups.iter().map(|g| oracle.distance(g)).sum();
    loop {
        let mut best: Option<(usize, usize, f64)> = None; // (i, j, new total)
        for i in 0..groups.len() {
            for j in (i + 1)..groups.len() {
                let merged = groups[i].union(&groups[j]);
                // Merging classes that never co-occur only inflates
                // missing(); still allowed — the distance handles it.
                let candidate_total =
                    total - oracle.distance(&groups[i]) - oracle.distance(&groups[j])
                        + oracle.distance(&merged);
                if candidate_total < total - 1e-12
                    && best.as_ref().is_none_or(|(_, _, b)| candidate_total < *b)
                    && constraints.holds(&merged, ctx)
                {
                    best = Some((i, j, candidate_total));
                }
            }
        }
        match best {
            Some((i, j, new_total)) => {
                let merged = groups[i].union(&groups[j]);
                groups.swap_remove(j);
                groups[i] = merged; // i < j, so i is untouched by swap_remove
                total = new_total;
            }
            None => break,
        }
    }
    Some((Grouping::new(groups), total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecco_constraints::ConstraintSet;
    use gecco_datagen::running_example;
    use gecco_eventlog::EventLog;

    fn compile(log: &EventLog, dsl: &str) -> CompiledConstraintSet {
        CompiledConstraintSet::compile(&ConstraintSet::parse(dsl).unwrap(), log).unwrap()
    }

    #[test]
    fn merges_improve_distance() {
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        let cs = compile(&log, "distinct(instance, \"org:role\") <= 1;");
        let (grouping, total) = greedy_grouping(&ctx, &cs).unwrap();
        assert!(grouping.is_exact_cover(&log));
        assert!(grouping.len() < log.num_classes(), "some merge must help");
        // Never worse than all singletons (distance |C_L| = 8).
        assert!(total < 8.0);
        // All groups satisfy the constraint.
        for g in grouping.iter() {
            assert!(cs.holds(g, &ctx));
        }
    }

    #[test]
    fn greedy_is_no_better_than_optimal() {
        use gecco_core::{CandidateStrategy, Gecco};
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        let dsl = "distinct(instance, \"org:role\") <= 1;";
        let cs = compile(&log, dsl);
        let (_, greedy_total) = greedy_grouping(&ctx, &cs).unwrap();
        let optimal = Gecco::new(&log)
            .constraints(ConstraintSet::parse(dsl).unwrap())
            .candidates(CandidateStrategy::Exhaustive)
            .run()
            .unwrap()
            .expect_abstracted();
        assert!(optimal.distance() <= greedy_total + 1e-9);
    }

    #[test]
    fn infeasible_singletons_abort() {
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        // Singletons have exactly 1 event per instance; require 2.
        let cs = compile(&log, "count(instance) >= 2;");
        assert!(greedy_grouping(&ctx, &cs).is_none());
    }

    #[test]
    fn constraints_block_merges() {
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        let cs = compile(&log, "size(g) <= 1;");
        let (grouping, _) = greedy_grouping(&ctx, &cs).unwrap();
        assert_eq!(grouping.len(), 8, "nothing may merge");
    }
}
