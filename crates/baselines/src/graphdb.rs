//! A small in-memory property-graph store with path-pattern queries.
//!
//! `BL_Q` stores the DFG "in a graph database, which is queried for
//! candidate groups using constraints formulated in a state-of-the-art
//! graph querying language" \[27\]. This module provides the equivalent
//! machinery: nodes/edges with typed properties and a variable-length
//! path-pattern query in the style of Cypher's
//! `MATCH p = (a)-[*min..max]->(b) WHERE all(n IN nodes(p) WHERE …)`.

use std::collections::HashMap;

/// Node handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Property values storable on nodes and edges.
#[derive(Debug, Clone, PartialEq)]
pub enum PropertyValue {
    /// String property.
    Str(String),
    /// Integer property.
    Int(i64),
    /// Float property.
    Float(f64),
}

impl PropertyValue {
    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            PropertyValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            PropertyValue::Int(i) => Some(*i as f64),
            PropertyValue::Float(f) => Some(*f),
            PropertyValue::Str(_) => None,
        }
    }
}

#[derive(Debug, Default, Clone)]
struct Node {
    properties: HashMap<String, PropertyValue>,
}

/// A directed property graph.
#[derive(Debug, Default, Clone)]
pub struct PropertyGraph {
    nodes: Vec<Node>,
    /// Adjacency: per node, outgoing `(target, edge property map)`.
    out_edges: Vec<Vec<(NodeId, HashMap<String, PropertyValue>)>>,
    in_edges: Vec<Vec<NodeId>>,
}

impl PropertyGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        self.nodes.push(Node::default());
        self.out_edges.push(Vec::new());
        self.in_edges.push(Vec::new());
        // gecco-lint: allow(lossy-cast) — node ids are u32 by design in the baseline graph
        NodeId(self.nodes.len() as u32 - 1)
    }

    /// Sets a node property.
    pub fn set_node_property(&mut self, node: NodeId, key: &str, value: PropertyValue) {
        self.nodes[node.0 as usize].properties.insert(key.to_string(), value);
    }

    /// Reads a node property.
    pub fn node_property(&self, node: NodeId, key: &str) -> Option<&PropertyValue> {
        self.nodes[node.0 as usize].properties.get(key)
    }

    /// Adds a directed edge with properties.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, properties: Vec<(String, PropertyValue)>) {
        // gecco-lint: allow(nondet-iter) — `properties` is the Vec parameter here, not the
        // same-named HashMap field; it is collected *into* the unordered property map
        self.out_edges[from.0 as usize].push((to, properties.into_iter().collect()));
        self.in_edges[to.0 as usize].push(from);
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.out_edges.iter().map(Vec::len).sum()
    }

    /// Outgoing neighbors.
    pub fn successors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_edges[node.0 as usize].iter().map(|(t, _)| *t)
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        // gecco-lint: allow(lossy-cast) — node ids are u32 by design in the baseline graph
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Evaluates a variable-length path pattern; returns all simple paths
    /// (no repeated nodes) with `min_len ≤ |nodes| ≤ max_len` whose nodes
    /// all satisfy `node_filter` and whose node multiset satisfies
    /// `path_filter`. Paths are returned as node-id sequences.
    pub fn match_paths(&self, pattern: &PathPattern<'_>) -> Vec<Vec<NodeId>> {
        let mut results = Vec::new();
        for start in self.nodes() {
            if results.len() >= pattern.limit {
                break;
            }
            if !(pattern.node_filter)(self, start) {
                continue;
            }
            let mut path = vec![start];
            self.extend_path(pattern, &mut path, &mut results);
        }
        results
    }

    fn extend_path(
        &self,
        pattern: &PathPattern<'_>,
        path: &mut Vec<NodeId>,
        results: &mut Vec<Vec<NodeId>>,
    ) {
        if results.len() >= pattern.limit {
            return;
        }
        if path.len() >= pattern.min_len && (pattern.path_filter)(self, path) {
            results.push(path.clone());
        }
        if path.len() >= pattern.max_len {
            return;
        }
        let last = *path.last().expect("non-empty path");
        for next in self.successors(last) {
            if path.contains(&next) {
                continue; // simple paths only
            }
            if !(pattern.node_filter)(self, next) {
                continue;
            }
            if !(pattern.prefix_filter)(self, path, next) {
                continue;
            }
            path.push(next);
            self.extend_path(pattern, path, results);
            path.pop();
        }
    }
}

/// A variable-length path pattern (the `-[*min..max]->` of Cypher) plus
/// node- and path-level predicates.
pub struct PathPattern<'a> {
    /// Minimum number of nodes on the path.
    pub min_len: usize,
    /// Maximum number of nodes on the path.
    pub max_len: usize,
    /// Result cap (Cypher's `LIMIT`): enumeration stops after this many
    /// matches; dense DFGs have combinatorially many simple paths.
    pub limit: usize,
    /// `WHERE` predicate each node must satisfy.
    pub node_filter: &'a dyn Fn(&PropertyGraph, NodeId) -> bool,
    /// Pruning predicate consulted before extending a partial path.
    pub prefix_filter: &'a dyn Fn(&PropertyGraph, &[NodeId], NodeId) -> bool,
    /// `WHERE` predicate over the complete path.
    pub path_filter: &'a dyn Fn(&PropertyGraph, &[NodeId]) -> bool,
}

impl Default for PathPattern<'_> {
    fn default() -> Self {
        PathPattern {
            min_len: 1,
            max_len: usize::MAX,
            limit: 1_000_000,
            node_filter: &|_, _| true,
            prefix_filter: &|_, _, _| true,
            path_filter: &|_, _| true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (PropertyGraph, [NodeId; 4]) {
        // a → b → d, a → c → d
        let mut g = PropertyGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        let d = g.add_node();
        for (n, name) in [(a, "a"), (b, "b"), (c, "c"), (d, "d")] {
            g.set_node_property(n, "name", PropertyValue::Str(name.into()));
        }
        g.add_edge(a, b, vec![("freq".into(), PropertyValue::Int(5))]);
        g.add_edge(a, c, vec![]);
        g.add_edge(b, d, vec![]);
        g.add_edge(c, d, vec![]);
        (g, [a, b, c, d])
    }

    #[test]
    fn properties_round_trip() {
        let (g, [a, ..]) = diamond();
        assert_eq!(g.node_property(a, "name").unwrap().as_str(), Some("a"));
        assert!(g.node_property(a, "missing").is_none());
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn matches_paths_within_bounds() {
        let (g, _) = diamond();
        let pattern = PathPattern { min_len: 2, max_len: 3, ..Default::default() };
        let paths = g.match_paths(&pattern);
        // Length-2: ab, ac, bd, cd; length-3: abd, acd.
        assert_eq!(paths.len(), 6);
        assert!(paths.iter().all(|p| p.len() >= 2 && p.len() <= 3));
    }

    #[test]
    fn node_filter_prunes() {
        let (g, [_, b, ..]) = diamond();
        let not_b = |g: &PropertyGraph, n: NodeId| {
            g.node_property(n, "name").and_then(|v| v.as_str()) != Some("b")
        };
        let pattern =
            PathPattern { min_len: 2, max_len: 3, node_filter: &not_b, ..Default::default() };
        let paths = g.match_paths(&pattern);
        assert!(paths.iter().all(|p| !p.contains(&b)));
        assert_eq!(paths.len(), 3); // ac, cd, acd
    }

    #[test]
    fn path_filter_applies_to_whole_path() {
        let (g, _) = diamond();
        let max_two = |_: &PropertyGraph, p: &[NodeId]| p.len() == 2;
        let pattern =
            PathPattern { min_len: 1, max_len: 4, path_filter: &max_two, ..Default::default() };
        let paths = g.match_paths(&pattern);
        assert!(paths.iter().all(|p| p.len() == 2));
    }

    #[test]
    fn simple_paths_only() {
        // A cycle must not loop forever.
        let mut g = PropertyGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b, vec![]);
        g.add_edge(b, a, vec![]);
        let pattern = PathPattern { min_len: 1, max_len: 10, ..Default::default() };
        let paths = g.match_paths(&pattern);
        assert_eq!(paths.len(), 4); // a, b, ab, ba
    }
}
