//! BL_P: spectral graph partitioning of the DFG.
//!
//! "Given a DFG, BL_P aims to minimize the sum of directly-follows
//! frequencies of cut edges, while cutting the graph into n partitions.
//! For this, BL_P applies spectral partitioning, where the weighted
//! adjacency matrix is populated using normalized directly-follows
//! frequencies" (§VI-A). Implementation: symmetrize and normalize the DF
//! frequencies, build the symmetric normalized Laplacian
//! `L = I − D^{−1/2} W D^{−1/2}`, embed each class into the `n` smallest
//! eigenvectors (Jacobi), and cluster the embedding with k-means.

use gecco_eventlog::{ClassId, ClassSet, Dfg, EventLog};
use gecco_linalg::{eigen_symmetric, kmeans, Matrix};

/// Partitions the event classes of `log` into exactly `n` groups.
/// Returns `None` when `n` is zero or exceeds the number of classes.
pub fn spectral_partitioning(log: &EventLog, n: usize) -> Option<Vec<ClassSet>> {
    let dfg = Dfg::from_log(log);
    let classes: Vec<ClassId> = dfg.nodes().filter(|&c| dfg.class_count(c) > 0).collect();
    let m = classes.len();
    if n == 0 || n > m {
        return None;
    }
    if n == m {
        return Some(classes.iter().map(|&c| ClassSet::singleton(c)).collect());
    }
    // Symmetrized, max-normalized adjacency.
    let mut w = Matrix::zeros(m, m);
    let mut max_w: f64 = 0.0;
    for i in 0..m {
        for j in 0..m {
            if i == j {
                continue;
            }
            let f = (dfg.count(classes[i], classes[j]) + dfg.count(classes[j], classes[i])) as f64;
            w[(i, j)] = f;
            max_w = max_w.max(f);
        }
    }
    if max_w > 0.0 {
        for i in 0..m {
            for j in 0..m {
                w[(i, j)] /= max_w;
            }
        }
    }
    // Symmetric normalized Laplacian.
    let degrees: Vec<f64> = (0..m).map(|i| (0..m).map(|j| w[(i, j)]).sum()).collect();
    let mut lap = Matrix::zeros(m, m);
    for i in 0..m {
        for j in 0..m {
            let norm = (degrees[i] * degrees[j]).sqrt();
            let wij = if norm > 0.0 { w[(i, j)] / norm } else { 0.0 };
            lap[(i, j)] = if i == j { 1.0 - wij } else { -wij };
        }
    }
    let eig = eigen_symmetric(&lap);
    // Embed into the n smallest eigenvectors, rows normalized (Ng–Jordan–
    // Weiss style).
    let mut embedding = Matrix::zeros(m, n);
    for r in 0..m {
        for c in 0..n {
            embedding[(r, c)] = eig.vectors[(r, c)];
        }
        let norm: f64 = (0..n).map(|c| embedding[(r, c)].powi(2)).sum::<f64>().sqrt();
        if norm > 1e-12 {
            for c in 0..n {
                embedding[(r, c)] /= norm;
            }
        }
    }
    let clustering = kmeans(&embedding, n, 200);
    let mut groups = vec![ClassSet::new(); n];
    for (row, &cluster) in clustering.assignment.iter().enumerate() {
        groups[cluster].insert(classes[row]);
    }
    // k-means can leave empty clusters in principle; steal the farthest
    // member of the largest group to keep exactly n non-empty partitions.
    for gi in 0..n {
        if groups[gi].is_empty() {
            let largest = (0..n).max_by_key(|&i| groups[i].len()).expect("n >= 1");
            if groups[largest].len() > 1 {
                let victim = groups[largest].iter().next().expect("non-empty");
                groups[largest].remove(victim);
                groups[gi].insert(victim);
            }
        }
    }
    groups.retain(|g| !g.is_empty());
    Some(groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecco_eventlog::LogBuilder;

    /// Two tightly-knit blocks joined by one rare edge.
    fn two_communities() -> EventLog {
        let mut b = LogBuilder::new();
        for i in 0..20 {
            b.trace(&format!("x{i}"))
                .event("a1")
                .unwrap()
                .event("a2")
                .unwrap()
                .event("a3")
                .unwrap()
                .done();
        }
        for i in 0..20 {
            b.trace(&format!("y{i}"))
                .event("b1")
                .unwrap()
                .event("b2")
                .unwrap()
                .event("b3")
                .unwrap()
                .done();
        }
        // One bridging trace.
        b.trace("bridge")
            .event("a1")
            .unwrap()
            .event("a2")
            .unwrap()
            .event("a3")
            .unwrap()
            .event("b1")
            .unwrap()
            .event("b2")
            .unwrap()
            .event("b3")
            .unwrap()
            .done();
        b.build()
    }

    #[test]
    fn separates_communities() {
        let log = two_communities();
        let groups = spectral_partitioning(&log, 2).unwrap();
        assert_eq!(groups.len(), 2);
        let names = |g: &ClassSet| -> Vec<String> {
            g.iter().map(|c| log.class_name(c).to_string()).collect()
        };
        for g in &groups {
            let ns = names(g);
            let all_a = ns.iter().all(|n| n.starts_with('a'));
            let all_b = ns.iter().all(|n| n.starts_with('b'));
            assert!(all_a || all_b, "mixed partition: {ns:?}");
        }
    }

    #[test]
    fn partitions_cover_all_classes_disjointly() {
        let log = two_communities();
        for n in 1..=6 {
            let groups = spectral_partitioning(&log, n).unwrap();
            let mut seen = ClassSet::new();
            for g in &groups {
                assert!(!g.intersects(&seen), "overlap at n={n}");
                seen = seen.union(g);
            }
            assert_eq!(seen.len(), 6, "cover at n={n}");
        }
    }

    #[test]
    fn degenerate_n() {
        let log = two_communities();
        assert!(spectral_partitioning(&log, 0).is_none());
        assert!(spectral_partitioning(&log, 7).is_none());
        let singleton = spectral_partitioning(&log, 6).unwrap();
        assert_eq!(singleton.len(), 6);
    }
}
