//! Property suites for the revised-simplex master (differential against
//! the dense tableau).
//!
//! Two layers:
//!
//! * **Raw LPs** — [`solve_lp_with_duals_revised`] against
//!   [`solve_lp_with_duals`] on random small LPs: same feasibility
//!   verdict, same objective, and the revised duals must independently
//!   certify optimality (primal feasibility + strong duality + dual
//!   feasibility), so agreement can never be two engines sharing a bug.
//! * **Column generation** — all four (master engine × smoothing) routes
//!   of [`solve_column_generation`] on random set-partitioning instances:
//!   same feasibility verdict, same optimal cost, and every returned
//!   selection is an exact cover. Pricing trajectories legitimately
//!   differ (dual degeneracy), so the invariant is the optimum, not the
//!   pool.

use gecco_solver::{
    solve_column_generation, solve_lp_with_duals, solve_lp_with_duals_revised, ColGenOptions,
    EnumeratedColumnSource, LpDualResult, MasterEngine, Model, Sense,
};
use proptest::prelude::*;

/// One random constraint: coefficient grid index per variable, sense
/// selector, right-hand side.
type RowSpec = (Vec<usize>, usize, f64);

/// A random LP: per-constraint `(coefficient grid index per var, sense,
/// rhs)`. Costs are strictly positive and variables nonnegative, so no
/// generated LP is unbounded — both engines must answer Optimal or
/// Infeasible, never Unbounded.
fn lp_spec() -> impl Strategy<Value = (Vec<f64>, Vec<RowSpec>)> {
    (2usize..6, 1usize..5).prop_flat_map(|(n, m)| {
        let costs = proptest::collection::vec(1usize..10, n)
            .prop_map(|c| c.into_iter().map(|v| v as f64 * 0.5).collect::<Vec<f64>>());
        let row = (proptest::collection::vec(0usize..5, n), 0usize..3, 0usize..4)
            .prop_map(|(coeffs, sense, rhs)| (coeffs, sense, rhs as f64));
        (costs, proptest::collection::vec(row, m))
    })
}

fn build_lp(costs: &[f64], rows: &[(Vec<usize>, usize, f64)]) -> Model {
    // Coefficient grid: index 0 is absent, the rest are 0.5 … 2.0.
    const GRID: [f64; 5] = [0.0, 0.5, 1.0, 1.5, 2.0];
    let mut model = Model::new();
    let vars: Vec<usize> = costs.iter().map(|&c| model.add_var(c)).collect();
    for (coeffs, sense, rhs) in rows {
        let mut terms: Vec<(usize, f64)> = coeffs
            .iter()
            .zip(&vars)
            .filter(|(&g, _)| g != 0)
            .map(|(&g, &v)| (v, GRID[g]))
            .collect();
        if terms.is_empty() {
            // An empty row is vacuous (Le/Ge at rhs ≥ 0) or plainly
            // infeasible (Eq at rhs > 0) in ways the engines need not
            // agree on; anchor it on the first variable instead.
            terms.push((vars[0], 1.0));
        }
        let sense = [Sense::Le, Sense::Ge, Sense::Eq][*sense];
        model.add_constraint(terms, sense, *rhs);
    }
    model
}

/// A random set-partitioning instance: universe size, pool of
/// `(members, cost)`, warm-start prefix length, optional cardinality
/// bounds.
#[allow(clippy::type_complexity)]
fn setpart_spec(
) -> impl Strategy<Value = (usize, Vec<(Vec<usize>, f64)>, usize, Option<usize>, Option<usize>)> {
    (2usize..7).prop_flat_map(|n| {
        let column = (proptest::collection::btree_set(0usize..n, 1..=n), 1usize..40).prop_map(
            |(members, c)| (members.into_iter().collect::<Vec<usize>>(), c as f64 * 0.25),
        );
        let pool = proptest::collection::vec(column, 1..12);
        (Just(n), pool, 0usize..4, proptest::option::of(1usize..4), proptest::option::of(1usize..5))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn revised_lp_matches_dense_on_random_lps(spec in lp_spec()) {
        let (costs, rows) = spec;
        let model = build_lp(&costs, &rows);
        let dense = solve_lp_with_duals(&model);
        let revised = solve_lp_with_duals_revised(&model);
        match (&dense, &revised) {
            (
                LpDualResult::Optimal { solution: ds, .. },
                LpDualResult::Optimal { solution: rs, duals },
            ) => {
                prop_assert!(
                    (ds.objective - rs.objective).abs() < 1e-6,
                    "objectives differ: dense {} vs revised {}",
                    ds.objective,
                    rs.objective
                );
                prop_assert!(model.is_feasible(&rs.values, 1e-6), "revised primal infeasible");
                // Strong duality: yᵀb equals the optimum.
                let yb: f64 = model.constraints().iter().zip(duals).map(|(c, y)| c.rhs * y).sum();
                prop_assert!((yb - rs.objective).abs() < 1e-6, "strong duality: {} vs {}", yb, rs.objective);
                // Dual feasibility: no column prices negative.
                for j in 0..model.num_vars() {
                    let mut reduced = model.costs()[j];
                    for (con, y) in model.constraints().iter().zip(duals) {
                        for &(v, coeff) in &con.terms {
                            if v == j {
                                reduced -= y * coeff;
                            }
                        }
                    }
                    prop_assert!(reduced > -1e-6, "column {} prices negative: {}", j, reduced);
                }
            }
            (LpDualResult::Infeasible, LpDualResult::Infeasible) => {}
            other => prop_assert!(false, "engines disagree: {:?}", other),
        }
    }

    #[test]
    fn colgen_routes_agree_on_random_instances(spec in setpart_spec()) {
        let (n, pool, warm, min_sets, max_sets) = spec;
        let warm_cols: Vec<(Vec<usize>, f64)> = pool[..warm.min(pool.len())].to_vec();
        let mut outcomes: Vec<(String, Option<(f64, bool)>)> = Vec::new();
        for master in [MasterEngine::Revised, MasterEngine::Dense] {
            for smoothing in [true, false] {
                let options = ColGenOptions { master, smoothing, ..ColGenOptions::default() };
                let mut source = EnumeratedColumnSource::new(pool.clone());
                let s = solve_column_generation(
                    n,
                    (min_sets, max_sets),
                    &warm_cols,
                    &mut source,
                    &options,
                );
                let label = format!("{master:?}/smoothing={smoothing}");
                if let Some(s) = &s {
                    prop_assert!(s.proven_optimal, "{}: budget cannot run out here: {:?}", label, s);
                    // Exact cover within the declared bounds.
                    let mut covered = vec![0usize; n];
                    for (members, _) in &s.columns {
                        for &e in members {
                            covered[e] += 1;
                        }
                    }
                    prop_assert!(covered.iter().all(|&c| c == 1), "{}: not a cover: {:?}", label, s);
                    prop_assert!(min_sets.is_none_or(|min| s.columns.len() >= min), "{}: {:?}", label, s);
                    prop_assert!(max_sets.is_none_or(|max| s.columns.len() <= max), "{}: {:?}", label, s);
                }
                outcomes.push((label, s.map(|s| (s.cost, s.proven_optimal))));
            }
        }
        for pair in outcomes.windows(2) {
            match (&pair[0].1, &pair[1].1) {
                (None, None) => {}
                (Some((a, _)), Some((b, _))) => prop_assert!(
                    (a - b).abs() < 1e-9,
                    "{} cost {} vs {} cost {}",
                    pair[0].0, a, pair[1].0, b
                ),
                _ => prop_assert!(false, "feasibility verdicts differ: {:?}", outcomes),
            }
        }
    }
}
