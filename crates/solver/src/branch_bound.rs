//! Branch-and-bound for binary programs over the simplex LP relaxation.
//!
//! A deliberately small but complete MIP solver: depth-first
//! branch-and-bound, branching on the most fractional variable, pruning by
//! the LP bound against the incumbent. Variable fixings are encoded as
//! equality rows added to the relaxation — adequate for the few hundred
//! variables the cross-validation and ablation workloads use. Production
//! GECCO runs use the [`crate::dlx`] engine instead.

use crate::model::{Model, Sense};
use crate::simplex::{solve_lp_box, LpResult};

/// Options for the branch-and-bound search.
#[derive(Debug, Clone)]
pub struct BnbOptions {
    /// Maximum number of explored nodes before giving up.
    pub max_nodes: usize,
    /// Integrality tolerance.
    pub tolerance: f64,
    /// Warm-start incumbent `(values, objective)`: a 0/1 assignment the
    /// caller guarantees feasible, with `objective = c'values`. Seeds the
    /// incumbent so the search prunes from the first node instead of
    /// searching cold; returned unchanged if nothing better is found.
    pub incumbent: Option<(Vec<f64>, f64)>,
    /// External admissible lower bound on the optimum (e.g. an LP
    /// relaxation solved by the caller). Once the incumbent reaches it the
    /// search stops with a proven optimum.
    pub lower_bound: Option<f64>,
}

impl Default for BnbOptions {
    fn default() -> Self {
        BnbOptions { max_nodes: 200_000, tolerance: 1e-6, incumbent: None, lower_bound: None }
    }
}

/// Result of a binary-program solve.
#[derive(Debug, Clone, PartialEq)]
pub enum BnbResult {
    /// Proven optimal 0/1 assignment.
    Optimal {
        /// The assignment (each entry 0.0 or 1.0).
        values: Vec<f64>,
        /// Objective value.
        objective: f64,
    },
    /// Node budget exhausted; best incumbent found so far (not proven
    /// optimal).
    Feasible {
        /// The assignment (each entry 0.0 or 1.0).
        values: Vec<f64>,
        /// Objective value.
        objective: f64,
    },
    /// No 0/1 assignment satisfies the constraints.
    Infeasible,
    /// Node budget exhausted before any feasible assignment was found.
    NodeLimit,
}

struct Search {
    best: Option<(Vec<f64>, f64)>,
    nodes: usize,
    max_nodes: usize,
    tolerance: f64,
    lower_bound: Option<f64>,
    exhausted: bool,
    /// The incumbent reached the external lower bound: optimal, stop.
    proved: bool,
}

/// Solves `min c'x`, `Ax {≤,≥,=} b`, `x ∈ {0,1}ⁿ`.
pub fn solve_binary_program(model: &Model, options: BnbOptions) -> BnbResult {
    let mut search = Search {
        best: options.incumbent.clone(),
        nodes: 0,
        max_nodes: options.max_nodes,
        tolerance: options.tolerance,
        lower_bound: options.lower_bound,
        exhausted: false,
        proved: false,
    };
    search.check_bound_proved();
    let mut fixed: Vec<Option<bool>> = vec![None; model.num_vars()];
    search.recurse(model, &mut fixed);
    match search.best {
        Some((values, objective)) => {
            if search.exhausted && !search.proved {
                BnbResult::Feasible { values, objective }
            } else {
                BnbResult::Optimal { values, objective }
            }
        }
        None => {
            if search.exhausted {
                BnbResult::NodeLimit
            } else {
                BnbResult::Infeasible
            }
        }
    }
}

impl Search {
    /// Stops the search once the incumbent matches the external lower
    /// bound: no strictly better assignment can exist.
    fn check_bound_proved(&mut self) {
        if let (Some((_, best)), Some(lb)) = (&self.best, self.lower_bound) {
            if *best <= lb + 1e-9 {
                self.proved = true;
            }
        }
    }

    fn recurse(&mut self, model: &Model, fixed: &mut Vec<Option<bool>>) {
        if self.exhausted || self.proved {
            return;
        }
        self.nodes += 1;
        if self.nodes > self.max_nodes {
            self.exhausted = true;
            return;
        }
        // Relaxation with fixings as equality rows.
        let mut relaxed = model.clone();
        for (i, f) in fixed.iter().enumerate() {
            if let Some(v) = f {
                relaxed.add_constraint(vec![(i, 1.0)], Sense::Eq, if *v { 1.0 } else { 0.0 });
            }
        }
        let solution = match solve_lp_box(&relaxed) {
            LpResult::Optimal(s) => s,
            LpResult::Infeasible => return,
            // With box constraints the relaxation cannot be unbounded.
            LpResult::Unbounded => return,
        };
        if let Some((_, best_obj)) = &self.best {
            if solution.objective >= *best_obj - 1e-9 {
                return; // bound
            }
        }
        // Most fractional variable.
        let tol = self.tolerance;
        let frac = solution
            .values
            .iter()
            .enumerate()
            .filter(|(i, _)| fixed[*i].is_none())
            .map(|(i, &v)| (i, (v - v.round()).abs()))
            .filter(|&(_, f)| f > tol)
            .max_by(|a, b| a.1.total_cmp(&b.1));
        match frac {
            None => {
                // Integral: new incumbent.
                let values: Vec<f64> = solution.values.iter().map(|v| v.round()).collect();
                if model.is_feasible(&values, 1e-6) {
                    let obj = model.objective(&values);
                    if self.best.as_ref().is_none_or(|(_, b)| obj < *b - 1e-12) {
                        self.best = Some((values, obj));
                        self.check_bound_proved();
                    }
                }
            }
            Some((var, _)) => {
                // Branch: try the rounding suggested by the LP first.
                let first = solution.values[var] >= 0.5;
                for v in [first, !first] {
                    fixed[var] = Some(v);
                    self.recurse(model, fixed);
                    fixed[var] = None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn optimal(r: BnbResult) -> (Vec<f64>, f64) {
        match r {
            BnbResult::Optimal { values, objective } => (values, objective),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn integral_lp_needs_no_branching() {
        let mut m = Model::new();
        let x = m.add_var(1.0);
        let y = m.add_var(2.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Eq, 1.0);
        let (v, obj) = optimal(solve_binary_program(&m, BnbOptions::default()));
        assert_eq!(v, vec![1.0, 0.0]);
        assert!((obj - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fractional_relaxation_forces_branching() {
        // The odd-cycle set-partitioning instance: LP optimum 1.5 is
        // fractional; the only integral covers pick one doubleton and one
        // singleton — but no singletons exist, so it is infeasible.
        let mut m = Model::new();
        let s01 = m.add_var(1.0);
        let s12 = m.add_var(1.0);
        let s02 = m.add_var(1.0);
        m.add_constraint(vec![(s01, 1.0), (s02, 1.0)], Sense::Eq, 1.0);
        m.add_constraint(vec![(s01, 1.0), (s12, 1.0)], Sense::Eq, 1.0);
        m.add_constraint(vec![(s12, 1.0), (s02, 1.0)], Sense::Eq, 1.0);
        assert_eq!(solve_binary_program(&m, BnbOptions::default()), BnbResult::Infeasible);
    }

    #[test]
    fn knapsack_style() {
        // min -3a -4b -5c s.t. 2a + 3b + 4c <= 6 → best is a + c (obj -8).
        let mut m = Model::new();
        let a = m.add_var(-3.0);
        let b = m.add_var(-4.0);
        let c = m.add_var(-5.0);
        m.add_constraint(vec![(a, 2.0), (b, 3.0), (c, 4.0)], Sense::Le, 6.0);
        let (v, obj) = optimal(solve_binary_program(&m, BnbOptions::default()));
        assert_eq!(v, vec![1.0, 0.0, 1.0]);
        assert!((obj + 8.0).abs() < 1e-9);
    }

    #[test]
    fn cardinality_side_constraints() {
        // Pick exactly 2 of 4 items minimizing cost.
        let mut m = Model::new();
        let vars: Vec<usize> = [5.0, 1.0, 3.0, 2.0].iter().map(|&c| m.add_var(c)).collect();
        m.add_constraint(vars.iter().map(|&v| (v, 1.0)).collect(), Sense::Eq, 2.0);
        let (v, obj) = optimal(solve_binary_program(&m, BnbOptions::default()));
        assert_eq!(v, vec![0.0, 1.0, 0.0, 1.0]);
        assert!((obj - 3.0).abs() < 1e-9);
    }

    #[test]
    fn node_limit_reported() {
        // Odd-cycle vertex cover: the root relaxation is fractional (all
        // 0.5, objective 1.5), so a budget of one node cannot finish.
        let mut m = Model::new();
        let vars: Vec<usize> = (0..3).map(|_| m.add_var(1.0)).collect();
        for i in 0..3 {
            m.add_constraint(vec![(vars[i], 1.0), (vars[(i + 1) % 3], 1.0)], Sense::Ge, 1.0);
        }
        let r = solve_binary_program(&m, BnbOptions { max_nodes: 1, ..Default::default() });
        assert_eq!(r, BnbResult::NodeLimit);
        // With a real budget the optimum (two vertices) is proven.
        let r = solve_binary_program(&m, BnbOptions::default());
        match r {
            BnbResult::Optimal { objective, .. } => assert!((objective - 2.0).abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
    }

    /// Set partitioning over two disjoint odd 3-cycles: elements `{0,1,2}`
    /// and `{3,4,5}`, each with its three overlapping pairs plus
    /// singletons. Both cycle relaxations are fractional (pairs at 0.5),
    /// so the search must branch in both blocks before it can complete —
    /// the first incumbent appears well before the tree is exhausted.
    fn double_odd_cycle() -> Model {
        let mut m = Model::new();
        let mut vars = Vec::new();
        for block in 0..2 {
            let base = 3 * block;
            for (a, b) in [(0, 1), (1, 2), (0, 2)] {
                vars.push((vec![base + a, base + b], 1.0));
            }
            for e in 0..3 {
                // Distinct costs keep the optimum unique.
                vars.push((vec![base + e], 0.55 + 0.01 * (base + e) as f64));
            }
        }
        let ids: Vec<usize> = vars.iter().map(|(_, c)| m.add_var(*c)).collect();
        for e in 0..6 {
            let terms: Vec<(usize, f64)> = vars
                .iter()
                .enumerate()
                .filter(|(_, (members, _))| members.contains(&e))
                .map(|(i, _)| (ids[i], 1.0))
                .collect();
            m.add_constraint(terms, Sense::Eq, 1.0);
        }
        m
    }

    #[test]
    fn node_limit_keeps_incumbent() {
        let m = double_odd_cycle();
        // Unlimited: proven optimal (pair + cheapest singleton per cycle).
        let full_optimum = match solve_binary_program(&m, BnbOptions::default()) {
            BnbResult::Optimal { objective, .. } => objective,
            other => panic!("unexpected {other:?}"),
        };
        assert!((full_optimum - (1.0 + 0.55 + 1.0 + 0.58)).abs() < 1e-9);
        // Find the node count at which the first incumbent appears, then
        // stop the search right there: the incumbent must come back as
        // `Feasible` instead of being discarded (the seed bug returned
        // `NodeLimit`, losing it).
        let mut saw_feasible = false;
        for budget in 1.. {
            match solve_binary_program(&m, BnbOptions { max_nodes: budget, ..Default::default() }) {
                BnbResult::NodeLimit => continue,
                BnbResult::Feasible { values, objective } => {
                    assert!(m.is_feasible(&values, 1e-6));
                    assert!((m.objective(&values) - objective).abs() < 1e-9);
                    assert!(objective >= full_optimum - 1e-9);
                    saw_feasible = true;
                    break;
                }
                BnbResult::Optimal { .. } => {
                    panic!("search of a fractional double cycle finished in {budget} nodes")
                }
                BnbResult::Infeasible => panic!("instance is feasible"),
            }
        }
        assert!(saw_feasible, "some budget must exhaust with an incumbent");
    }

    #[test]
    fn warm_start_and_lower_bound_prove_without_search() {
        // Seed the search with the known optimum and a matching lower
        // bound: it must return immediately, proven optimal.
        let mut m = Model::new();
        let a = m.add_var(1.0);
        let b = m.add_var(2.0);
        m.add_constraint(vec![(a, 1.0), (b, 1.0)], Sense::Eq, 1.0);
        let r = solve_binary_program(
            &m,
            BnbOptions {
                incumbent: Some((vec![1.0, 0.0], 1.0)),
                lower_bound: Some(1.0),
                ..Default::default()
            },
        );
        assert_eq!(r, BnbResult::Optimal { values: vec![1.0, 0.0], objective: 1.0 });
    }

    #[test]
    fn warm_start_is_replaced_by_a_better_solution() {
        let mut m = Model::new();
        let a = m.add_var(1.0);
        let b = m.add_var(2.0);
        m.add_constraint(vec![(a, 1.0), (b, 1.0)], Sense::Eq, 1.0);
        // Feasible but suboptimal incumbent: picking b at cost 2.
        let r = solve_binary_program(
            &m,
            BnbOptions { incumbent: Some((vec![0.0, 1.0], 2.0)), ..Default::default() },
        );
        match r {
            BnbResult::Optimal { values, objective } => {
                assert_eq!(values, vec![1.0, 0.0]);
                assert!((objective - 1.0).abs() < 1e-9);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn infeasible_binary_program() {
        let mut m = Model::new();
        let x = m.add_var(1.0);
        m.add_constraint(vec![(x, 1.0)], Sense::Ge, 2.0);
        assert_eq!(solve_binary_program(&m, BnbOptions::default()), BnbResult::Infeasible);
    }
}
