//! Dancing-links exact cover with cost minimization and cardinality bounds.
//!
//! GECCO's Step-2 problem — pick disjoint candidate groups covering every
//! event class exactly once at minimal total distance, optionally with
//! bounds on the number of selected groups — is weighted set partitioning,
//! i.e. *min-cost exact cover*. Knuth's Algorithm X with dancing links
//! enumerates exact covers efficiently; we add branch-and-bound pruning on
//! an admissible per-column lower bound (`min over rows covering c of
//! cost(row)/|row|`) and on the selection-cardinality bounds.

/// Outcome of an exact-cover solve.
#[derive(Debug, Clone, PartialEq)]
pub enum CoverOutcome {
    /// Proven minimum-cost exact cover.
    Optimal {
        /// Indexes of the selected rows (sets).
        rows: Vec<usize>,
        /// Total cost.
        cost: f64,
    },
    /// Node budget exhausted; best cover found so far (not proven optimal).
    Feasible {
        /// Indexes of the selected rows (sets).
        rows: Vec<usize>,
        /// Total cost.
        cost: f64,
    },
    /// Complete search found no exact cover under the cardinality bounds.
    Infeasible,
    /// Node budget exhausted before any cover was found.
    Unknown,
}

impl CoverOutcome {
    /// The selected rows and cost if any cover was found.
    pub fn solution(&self) -> Option<(&[usize], f64)> {
        match self {
            CoverOutcome::Optimal { rows, cost } | CoverOutcome::Feasible { rows, cost } => {
                Some((rows, *cost))
            }
            _ => None,
        }
    }
}

/// A weighted exact-cover instance.
#[derive(Debug, Clone, Default)]
pub struct ExactCover {
    n_cols: usize,
    rows: Vec<(Vec<usize>, f64)>,
}

impl ExactCover {
    /// An instance over `n_cols` elements to cover.
    pub fn new(n_cols: usize) -> Self {
        ExactCover { n_cols, rows: Vec::new() }
    }

    /// Adds a candidate set covering `cols` (unique, `< n_cols`) at `cost`;
    /// returns its row index.
    pub fn add_row(&mut self, cols: Vec<usize>, cost: f64) -> usize {
        debug_assert!(cols.iter().all(|&c| c < self.n_cols));
        debug_assert!(!cols.is_empty(), "empty rows can never be selected");
        self.rows.push((cols, cost));
        self.rows.len() - 1
    }

    /// Number of candidate rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Solves for the minimum-cost exact cover with `min_rows ≤ |selection|
    /// ≤ max_rows` (either bound optional) under a search-node budget.
    pub fn solve(
        &self,
        min_rows: Option<usize>,
        max_rows: Option<usize>,
        max_nodes: usize,
    ) -> CoverOutcome {
        self.solve_params(&SolveParams { min_rows, max_rows, max_nodes, ..Default::default() })
    }

    /// Like [`ExactCover::solve`], with a warm-start incumbent and an
    /// external lower bound threaded into the branch-and-bound (see
    /// [`SolveParams`]).
    pub fn solve_params(&self, params: &SolveParams) -> CoverOutcome {
        if self.n_cols == 0 {
            return if params.min_rows.unwrap_or(0) == 0 {
                CoverOutcome::Optimal { rows: vec![], cost: 0.0 }
            } else {
                CoverOutcome::Infeasible
            };
        }
        let mut links = Links::build(self);
        let mut search = DlxSearch {
            links: &mut links,
            rows: &self.rows,
            min_rows: params.min_rows.unwrap_or(0),
            max_rows: params.max_rows.unwrap_or(usize::MAX),
            max_row_len: self.rows.iter().map(|(c, _)| c.len()).max().unwrap_or(1),
            selection: Vec::new(),
            cost: 0.0,
            best: params.warm_start.clone(),
            nodes: 0,
            max_nodes: if params.max_nodes == 0 { 5_000_000 } else { params.max_nodes },
            lower_bound: params.lower_bound,
            exhausted: false,
            proved: false,
        };
        search.check_bound_proved();
        search.run();
        let exhausted = search.exhausted;
        let proved = search.proved;
        match search.best {
            Some((rows, cost)) => {
                if exhausted && !proved {
                    CoverOutcome::Feasible { rows, cost }
                } else {
                    CoverOutcome::Optimal { rows, cost }
                }
            }
            None => {
                if exhausted {
                    CoverOutcome::Unknown
                } else {
                    CoverOutcome::Infeasible
                }
            }
        }
    }
}

/// Parameters for [`ExactCover::solve_params`].
#[derive(Debug, Clone, Default)]
pub struct SolveParams {
    /// Minimum number of selected rows.
    pub min_rows: Option<usize>,
    /// Maximum number of selected rows.
    pub max_rows: Option<usize>,
    /// Search budget in nodes; `0` means the default of 5 million (the
    /// same convention as `SetPartitionProblem::max_nodes`).
    pub max_nodes: usize,
    /// Warm-start incumbent `(rows, cost)`: a cover the caller guarantees
    /// feasible (exact, within the cardinality bounds, cost = Σ row costs).
    /// Seeds the branch-and-bound so it prunes from the first node;
    /// returned unchanged if the search finds nothing better.
    pub warm_start: Option<(Vec<usize>, f64)>,
    /// External admissible lower bound on the optimal cost (e.g. the LP
    /// relaxation). Once the incumbent reaches it the search stops with a
    /// proven optimum.
    pub lower_bound: Option<f64>,
}

/// Doubly-linked torus of the exact-cover matrix.
struct Links {
    l: Vec<usize>,
    r: Vec<usize>,
    u: Vec<usize>,
    d: Vec<usize>,
    /// Column header of each node.
    col: Vec<usize>,
    /// Active rows per column header.
    size: Vec<usize>,
    /// Source row index of each node.
    row_id: Vec<usize>,
    /// Admissible cost share per column: min over covering rows of
    /// cost/len. `Σ` over active columns lower-bounds the completion cost.
    min_share: Vec<f64>,
    /// Current Σ of min_share over active columns.
    lb: f64,
}

const ROOT: usize = 0;

impl Links {
    fn build(instance: &ExactCover) -> Links {
        let n = instance.n_cols;
        let num_nodes = 1 + n + instance.rows.iter().map(|(c, _)| c.len()).sum::<usize>();
        let mut links = Links {
            l: vec![0; num_nodes],
            r: vec![0; num_nodes],
            u: vec![0; num_nodes],
            d: vec![0; num_nodes],
            col: vec![0; num_nodes],
            size: vec![0; 1 + n],
            row_id: vec![usize::MAX; num_nodes],
            min_share: vec![f64::INFINITY; 1 + n],
            lb: 0.0,
        };
        // Root and column headers form a circular list 0..=n.
        for i in 0..=n {
            links.l[i] = if i == 0 { n } else { i - 1 };
            links.r[i] = if i == n { 0 } else { i + 1 };
            links.u[i] = i;
            links.d[i] = i;
            links.col[i] = i;
        }
        let mut next = n + 1;
        for (row_idx, (cols, cost)) in instance.rows.iter().enumerate() {
            let share = cost / cols.len() as f64;
            let first = next;
            for &c in cols {
                let header = c + 1;
                let node = next;
                next += 1;
                links.col[node] = header;
                links.row_id[node] = row_idx;
                // Vertical insert above header (end of column).
                links.d[node] = header;
                links.u[node] = links.u[header];
                links.d[links.u[header]] = node;
                links.u[header] = node;
                links.size[header] += 1;
                links.min_share[header] = links.min_share[header].min(share);
                // Horizontal circular link within the row.
                if node == first {
                    links.l[node] = node;
                    links.r[node] = node;
                } else {
                    links.l[node] = links.l[first];
                    links.r[node] = first;
                    links.r[links.l[first]] = node;
                    links.l[first] = node;
                }
            }
        }
        // Columns with no covering row make the whole instance infeasible;
        // leave min_share = ∞ so the bound prunes immediately.
        links.lb = (1..=n).map(|h| links.min_share[h]).sum();
        links
    }

    fn cover(&mut self, header: usize) {
        self.lb -= self.min_share[header];
        self.r[self.l[header]] = self.r[header];
        self.l[self.r[header]] = self.l[header];
        let mut i = self.d[header];
        while i != header {
            let mut j = self.r[i];
            while j != i {
                self.d[self.u[j]] = self.d[j];
                self.u[self.d[j]] = self.u[j];
                self.size[self.col[j]] -= 1;
                j = self.r[j];
            }
            i = self.d[i];
        }
    }

    fn uncover(&mut self, header: usize) {
        let mut i = self.u[header];
        while i != header {
            let mut j = self.l[i];
            while j != i {
                self.size[self.col[j]] += 1;
                self.d[self.u[j]] = j;
                self.u[self.d[j]] = j;
                j = self.l[j];
            }
            i = self.u[i];
        }
        self.r[self.l[header]] = header;
        self.l[self.r[header]] = header;
        self.lb += self.min_share[header];
    }

    /// Number of active (uncovered) columns.
    fn active_columns(&self) -> usize {
        let mut n = 0;
        let mut c = self.r[ROOT];
        while c != ROOT {
            n += 1;
            c = self.r[c];
        }
        n
    }
}

struct DlxSearch<'a> {
    links: &'a mut Links,
    rows: &'a [(Vec<usize>, f64)],
    min_rows: usize,
    max_rows: usize,
    max_row_len: usize,
    selection: Vec<usize>,
    cost: f64,
    best: Option<(Vec<usize>, f64)>,
    nodes: usize,
    max_nodes: usize,
    lower_bound: Option<f64>,
    exhausted: bool,
    /// The incumbent reached the external lower bound: optimal, stop.
    proved: bool,
}

impl DlxSearch<'_> {
    /// Stops the search once the incumbent matches the external lower
    /// bound: no strictly better cover can exist.
    fn check_bound_proved(&mut self) {
        if let (Some((_, best)), Some(lb)) = (&self.best, self.lower_bound) {
            if *best <= lb + 1e-9 {
                self.proved = true;
            }
        }
    }

    fn run(&mut self) {
        if self.exhausted || self.proved {
            return;
        }
        self.nodes += 1;
        if self.nodes > self.max_nodes {
            self.exhausted = true;
            return;
        }
        if self.links.r[ROOT] == ROOT {
            // Complete cover.
            if self.selection.len() >= self.min_rows
                && self.best.as_ref().is_none_or(|(_, b)| self.cost < *b - 1e-12)
            {
                self.best = Some((self.selection.clone(), self.cost));
                self.check_bound_proved();
            }
            return;
        }
        // Cost bound (admissible: every active column costs at least its
        // cheapest share).
        if let Some((_, best)) = &self.best {
            if self.cost + self.links.lb >= *best - 1e-12 {
                return;
            }
        }
        // Cardinality bounds.
        let active = self.links.active_columns();
        let needed_at_least = active.div_ceil(self.max_row_len);
        if self.selection.len() + needed_at_least > self.max_rows {
            return;
        }
        if self.selection.len() + active < self.min_rows {
            return; // even all-singleton completion falls short
        }
        // Choose the active column with the fewest covering rows.
        let mut chosen = self.links.r[ROOT];
        {
            let mut c = self.links.r[ROOT];
            while c != ROOT {
                if self.links.size[c] < self.links.size[chosen] {
                    chosen = c;
                }
                c = self.links.r[c];
            }
        }
        if self.links.size[chosen] == 0 {
            return; // dead end
        }
        self.links.cover(chosen);
        let mut i = self.links.d[chosen];
        while i != chosen {
            let row = self.links.row_id[i];
            let row_cost = self.rows[row].1;
            self.selection.push(row);
            self.cost += row_cost;
            let mut j = self.links.r[i];
            while j != i {
                self.links.cover(self.links.col[j]);
                j = self.links.r[j];
            }
            self.run();
            let mut j = self.links.l[i];
            while j != i {
                self.links.uncover(self.links.col[j]);
                j = self.links.l[j];
            }
            self.cost -= row_cost;
            self.selection.pop();
            if self.exhausted || self.proved {
                break;
            }
            i = self.links.d[i];
        }
        self.links.uncover(chosen);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn optimal(outcome: CoverOutcome) -> (Vec<usize>, f64) {
        match outcome {
            CoverOutcome::Optimal { mut rows, cost } => {
                rows.sort_unstable();
                (rows, cost)
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn knuth_toy_instance() {
        // Knuth's classic 7-column example (costs all 1 → minimize #rows).
        let mut ec = ExactCover::new(7);
        ec.add_row(vec![2, 4, 5], 1.0); // 0
        ec.add_row(vec![0, 3, 6], 1.0); // 1
        ec.add_row(vec![1, 2, 5], 1.0); // 2
        ec.add_row(vec![0, 3], 1.0); // 3
        ec.add_row(vec![1, 6], 1.0); // 4
        ec.add_row(vec![3, 4, 6], 1.0); // 5
        let (rows, cost) = optimal(ec.solve(None, None, 1 << 20));
        assert_eq!(rows, vec![0, 3, 4]);
        assert_eq!(cost, 3.0);
    }

    #[test]
    fn picks_cheaper_cover() {
        let mut ec = ExactCover::new(3);
        ec.add_row(vec![0, 1, 2], 10.0); // expensive all-in-one
        ec.add_row(vec![0], 1.0);
        ec.add_row(vec![1], 1.0);
        ec.add_row(vec![2], 1.0);
        let (rows, cost) = optimal(ec.solve(None, None, 1 << 20));
        assert_eq!(rows, vec![1, 2, 3]);
        assert_eq!(cost, 3.0);
        // Flip the pricing: the big set wins.
        let mut ec = ExactCover::new(3);
        ec.add_row(vec![0, 1, 2], 2.0);
        ec.add_row(vec![0], 1.0);
        ec.add_row(vec![1], 1.0);
        ec.add_row(vec![2], 1.0);
        let (rows, cost) = optimal(ec.solve(None, None, 1 << 20));
        assert_eq!(rows, vec![0]);
        assert_eq!(cost, 2.0);
    }

    #[test]
    fn cardinality_bounds_enforced() {
        let mut ec = ExactCover::new(3);
        ec.add_row(vec![0, 1, 2], 2.0); // 0
        ec.add_row(vec![0], 0.1); // 1
        ec.add_row(vec![1], 0.1); // 2
        ec.add_row(vec![2], 0.1); // 3
                                  // Unbounded: singletons win.
        let (rows, _) = optimal(ec.solve(None, None, 1 << 20));
        assert_eq!(rows, vec![1, 2, 3]);
        // At most 1 set: forced to the big one.
        let (rows, cost) = optimal(ec.solve(None, Some(1), 1 << 20));
        assert_eq!(rows, vec![0]);
        assert_eq!(cost, 2.0);
        // At least 2 sets: big one excluded.
        let (rows, _) = optimal(ec.solve(Some(2), None, 1 << 20));
        assert_eq!(rows, vec![1, 2, 3]);
        // Exactly 2: impossible (1+1+1 or 3).
        assert_eq!(ec.solve(Some(2), Some(2), 1 << 20), CoverOutcome::Infeasible);
    }

    #[test]
    fn infeasible_when_column_uncoverable() {
        let mut ec = ExactCover::new(2);
        ec.add_row(vec![0], 1.0);
        assert_eq!(ec.solve(None, None, 1 << 20), CoverOutcome::Infeasible);
    }

    #[test]
    fn overlapping_rows_cannot_both_be_chosen() {
        let mut ec = ExactCover::new(3);
        ec.add_row(vec![0, 1], 1.0);
        ec.add_row(vec![1, 2], 1.0);
        // {0,1} and {1,2} overlap on 1; no singleton for the leftover.
        assert_eq!(ec.solve(None, None, 1 << 20), CoverOutcome::Infeasible);
        ec.add_row(vec![2], 0.5);
        ec.add_row(vec![0], 0.5);
        let (rows, cost) = optimal(ec.solve(None, None, 1 << 20));
        assert!(rows == vec![0, 2] || rows == vec![1, 3]);
        assert!((cost - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_universe() {
        let ec = ExactCover::new(0);
        assert_eq!(
            ec.solve(None, None, 1 << 20),
            CoverOutcome::Optimal { rows: vec![], cost: 0.0 }
        );
        assert_eq!(ec.solve(Some(1), None, 1 << 20), CoverOutcome::Infeasible);
    }

    #[test]
    fn node_budget_degrades_gracefully() {
        let mut ec = ExactCover::new(6);
        for i in 0..6 {
            ec.add_row(vec![i], 1.0);
        }
        for i in 0..5 {
            ec.add_row(vec![i, i + 1], 1.5);
        }
        match ec.solve(None, None, 2) {
            CoverOutcome::Feasible { .. } | CoverOutcome::Unknown => {}
            other => panic!("expected budget-limited outcome, got {other:?}"),
        }
    }

    #[test]
    fn warm_start_survives_and_is_improved_upon() {
        let mut ec = ExactCover::new(3);
        ec.add_row(vec![0, 1, 2], 2.0); // 0: the optimum
        ec.add_row(vec![0], 1.0); // 1
        ec.add_row(vec![1], 1.0); // 2
        ec.add_row(vec![2], 1.0); // 3
                                  // Suboptimal warm start (the singletons): the search must improve
                                  // on it.
        let params = SolveParams {
            max_nodes: 1 << 20,
            warm_start: Some((vec![1, 2, 3], 3.0)),
            ..Default::default()
        };
        match ec.solve_params(&params) {
            CoverOutcome::Optimal { rows, cost } => {
                assert_eq!(rows, vec![0]);
                assert!((cost - 2.0).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Warm start equal to the optimum + matching bound: returned as
        // proven optimal without searching (one node suffices as budget
        // because the bound check fires before any node is expanded).
        let params = SolveParams {
            max_nodes: 1,
            warm_start: Some((vec![0], 2.0)),
            lower_bound: Some(2.0),
            ..Default::default()
        };
        match ec.solve_params(&params) {
            CoverOutcome::Optimal { rows, cost } => {
                assert_eq!(rows, vec![0]);
                assert!((cost - 2.0).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn warm_start_returned_as_feasible_on_exhaustion() {
        // A budget of 1 node cannot complete the search, but the
        // warm-start incumbent must survive as `Feasible`.
        let mut ec = ExactCover::new(4);
        for i in 0..4 {
            ec.add_row(vec![i], 1.0);
        }
        for i in 0..3 {
            ec.add_row(vec![i, i + 1], 1.5);
        }
        let params = SolveParams {
            max_nodes: 1,
            warm_start: Some((vec![0, 1, 2, 3], 4.0)),
            ..Default::default()
        };
        match ec.solve_params(&params) {
            CoverOutcome::Feasible { rows, cost } => {
                assert_eq!(rows, vec![0, 1, 2, 3]);
                assert!((cost - 4.0).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn solution_accessor() {
        let o = CoverOutcome::Optimal { rows: vec![1], cost: 2.0 };
        assert_eq!(o.solution(), Some((&[1usize][..], 2.0)));
        assert_eq!(CoverOutcome::Infeasible.solution(), None);
    }
}
