//! Column generation for weighted set partitioning.
//!
//! GECCO's Step-2 instances stop being enumerable once richer candidate
//! sources multiply the pool, so this module solves the set-partitioning
//! MIP without ever materializing the full column set. The classic
//! restricted-master scheme:
//!
//! 1. **Restricted master LP** — the LP relaxation over the columns seen
//!    so far, kept feasible by big-M artificial columns (one per element,
//!    counted toward the minimum-cardinality row so residual `min_sets`
//!    bounds cannot strand the master). By default the master is the
//!    *incremental* sparse revised simplex of [`crate::revised`]: priced
//!    columns **append** to a live `RevisedMaster` and each round
//!    re-optimizes from the previous optimal basis (new columns enter
//!    nonbasic at zero, so that basis stays primal-feasible — a genuine
//!    warm start). The dense tableau route
//!    ([`crate::simplex::solve_lp_with_duals`]), which rebuilds the master
//!    model from scratch every round, remains selectable
//!    ([`MasterEngine::Dense`]) as the differential oracle.
//! 2. **Pricing** — a caller-supplied [`ColumnSource`] receives the duals
//!    and returns columns whose reduced cost
//!    `c_S − Σ_{e∈S} y_e − y_card` lies below a threshold. An empty reply
//!    is a *proof* that no such column exists; that contract is what makes
//!    the loop exact. To damp the dual oscillation that plagues degenerate
//!    masters, pricing first runs against Wentges-smoothed duals
//!    `ỹ = α·ŷ + (1−α)·y` (a convex combination with a stability center
//!    `ŷ`); a smoothed pass that yields nothing (a *misprice*) falls back
//!    to the true duals in the same round, so LP convergence is still
//!    certified by an exact reply and smoothing never costs exactness.
//! 3. **Restricted IP** — once the LP prices out (no column below `−ε`),
//!    the existing presolve → decompose → branch-and-bound pipeline solves
//!    the integer program over the restricted pool.
//! 4. **Gap closing** — for set partitioning, any exact cover `S` obeys
//!    `cost(S) ≥ z_LP + Σ_{j∈S} rc_j` (complementary slackness absorbs the
//!    cardinality rows), and after convergence every column — seen or not —
//!    has `rc ≥ 0`. So a cover beating the incumbent must contain a column
//!    with `rc < z_IP − z_LP`: threshold-pricing at the gap either grows
//!    the pool (and the loop repeats) or proves the incumbent optimal.
//!
//! The enumerated presolved route ([`SetPartitionProblem::solve_presolved`])
//! stays as the differential oracle: on enumerable pools both routes return
//! selections with bit-identical cost and validity (property-tested in
//! `gecco-core`).

use crate::model::{Model, Sense};
use crate::presolve::PresolveOptions;
use crate::revised::{MasterLp, RevisedMaster};
use crate::setpart::{SetPartitionProblem, SetPartitionSolution, SolveEngine};
use crate::simplex::{solve_lp_with_duals_counted, LpDualResult};
use std::collections::HashMap;

/// Dual prices handed to a [`ColumnSource`].
#[derive(Debug, Clone)]
pub struct DualPrices<'a> {
    /// `element[e]` is the dual of element `e`'s exactly-one row.
    pub element: &'a [f64],
    /// Sum of the cardinality-row duals; every set pays it once.
    pub per_set: f64,
}

impl DualPrices<'_> {
    /// Reduced cost of a column: `cost − Σ_{e∈members} y_e − per_set`.
    pub fn reduced_cost(&self, members: &[usize], cost: f64) -> f64 {
        let mut rc = cost - self.per_set;
        for &e in members {
            rc -= self.element[e];
        }
        rc
    }
}

/// One pricing request.
#[derive(Debug, Clone, Copy)]
pub struct PricingRequest {
    /// Return only columns whose reduced cost is strictly below this.
    /// `f64::INFINITY` asks for every column not yet returned (the driver
    /// falls back to it when the restricted pool cannot even form a cover).
    pub threshold: f64,
    /// Soft cap on columns per reply; the driver keeps asking while
    /// replies are non-empty, so truncating is always safe.
    pub max_columns: usize,
}

/// A lazy supplier of set-partitioning columns, driven by LP duals.
///
/// # Contract
///
/// * Each reply contains columns `(members, cost)` with reduced cost below
///   `request.threshold` under `prices`; members need not be sorted and
///   duplicates of earlier replies are tolerated (the driver dedups and
///   keeps the cheapest), but a source should avoid resending columns — the
///   driver treats a reply with no *new* columns as exhaustive.
/// * **An empty reply is a proof** that no column of the full (implicit)
///   pool prices below the threshold. Exactness of the whole loop rests on
///   this: a source that forgets columns silently turns "proven optimal"
///   into "optimal over what the source showed".
pub trait ColumnSource {
    /// Prices columns against `prices` per `request`.
    fn price(
        &mut self,
        prices: &DualPrices<'_>,
        request: &PricingRequest,
    ) -> Vec<(Vec<usize>, f64)>;
}

/// A [`ColumnSource`] over a fully materialized pool — the test/bench
/// harness and the bridge for callers that already enumerated candidates.
#[derive(Debug, Clone)]
pub struct EnumeratedColumnSource {
    columns: Vec<(Vec<usize>, f64)>,
    returned: Vec<bool>,
}

impl EnumeratedColumnSource {
    /// Wraps an explicit column pool.
    pub fn new(columns: Vec<(Vec<usize>, f64)>) -> Self {
        let returned = vec![false; columns.len()];
        EnumeratedColumnSource { columns, returned }
    }
}

impl ColumnSource for EnumeratedColumnSource {
    fn price(
        &mut self,
        prices: &DualPrices<'_>,
        request: &PricingRequest,
    ) -> Vec<(Vec<usize>, f64)> {
        let mut out = Vec::new();
        for (j, (members, cost)) in self.columns.iter().enumerate() {
            if self.returned[j] {
                continue;
            }
            if prices.reduced_cost(members, *cost) < request.threshold {
                self.returned[j] = true;
                out.push((members.clone(), *cost));
                if out.len() >= request.max_columns {
                    break;
                }
            }
        }
        out
    }
}

/// Which LP engine solves the restricted master.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum MasterEngine {
    /// The incremental sparse revised simplex ([`crate::revised`]):
    /// columns append to a live master, each round re-optimizes from the
    /// previous optimal basis.
    #[default]
    Revised,
    /// The dense two-phase tableau, rebuilt from scratch every round —
    /// the differential oracle for the revised route.
    Dense,
}

/// Tuning knobs for the restricted-master loop.
#[derive(Debug, Clone)]
pub struct ColGenOptions {
    /// Engine for the restricted integer solves.
    pub engine: SolveEngine,
    /// Presolve configuration for the restricted integer solves.
    pub presolve: PresolveOptions,
    /// Node budget per restricted integer solve (0 = engine default).
    pub max_nodes: usize,
    /// Cap on pricing calls across the whole run; hitting it degrades the
    /// result to `proven_optimal: false` instead of looping forever on a
    /// misbehaving source.
    pub max_rounds: usize,
    /// `max_columns` per pricing request.
    pub pricing_batch: usize,
    /// Reduced-cost tolerance: the LP loop prices at `−eps`, gap closing
    /// adds `+eps` of slack so float noise never hides a useful column.
    pub eps: f64,
    /// Engine for the restricted master LP solves.
    pub master: MasterEngine,
    /// Wentges dual smoothing: price against `ỹ = α·ŷ + (1−α)·y` first
    /// and fall back to the true duals `y` on a misprice. On by default;
    /// `false` reproduces the unsmoothed trajectory exactly.
    pub smoothing: bool,
    /// Smoothing weight `α ∈ [0, 1)` on the stability center (`0.0`
    /// degenerates to unsmoothed pricing).
    pub smoothing_alpha: f64,
}

impl Default for ColGenOptions {
    fn default() -> Self {
        ColGenOptions {
            engine: SolveEngine::default(),
            presolve: PresolveOptions::default(),
            max_nodes: 0,
            max_rounds: 10_000,
            pricing_batch: 256,
            eps: 1e-7,
            master: MasterEngine::default(),
            smoothing: true,
            smoothing_alpha: 0.5,
        }
    }
}

/// Counters from one column-generation run. Both master engines drive the
/// same loop body, so every counter means the same thing on either route.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ColGenStats {
    /// Master LP solves (each is one re-optimization round).
    pub lp_solves: usize,
    /// Pricing calls answered by the source.
    pub pricing_calls: usize,
    /// Columns priced into the master (after dedup).
    pub columns_generated: usize,
    /// Restricted integer solves.
    pub ip_solves: usize,
    /// Final LP relaxation value — a valid global lower bound, recorded
    /// only once the LP *priced out* (an exact empty reply under the true
    /// duals). `NAN` if the run ended before that point, including when
    /// the round budget ran out: the restricted value then bounds nothing.
    pub lp_bound: f64,
    /// Simplex pivots across all master solves (dense and revised alike).
    pub master_pivots: usize,
    /// Master solves whose optimum still carried artificial mass — rounds
    /// where the restricted pool could not yet form a fractional cover.
    pub artificial_rounds: usize,
    /// Smoothed pricing passes that returned nothing and fell back to the
    /// true duals (Wentges mispricing events).
    pub mispricings: usize,
}

/// The outcome of [`solve_column_generation`].
#[derive(Debug, Clone)]
pub struct ColGenSolution {
    /// Selected columns `(sorted members, cost)`, ordered by members.
    pub columns: Vec<(Vec<usize>, f64)>,
    /// Total cost of the selection.
    pub cost: f64,
    /// Whether the gap-closing loop proved global optimality (false when
    /// a node budget or `max_rounds` ran out).
    pub proven_optimal: bool,
    /// Run counters.
    pub stats: ColGenStats,
}

/// How [`Pool::insert`] changed the pool — the live master mirrors each
/// change (append the new column, or lower a held cost).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PoolChange {
    /// A new member set entered at this column index.
    Added(usize),
    /// A known member set got strictly cheaper at this column index.
    Cheaper(usize),
    /// Duplicate at no better cost (or an empty member set): no change.
    Unchanged,
}

/// The restricted-master pool: dedup by member set, cheapest cost wins.
struct Pool {
    columns: Vec<(Vec<usize>, f64)>,
    by_members: HashMap<Vec<usize>, usize>,
}

impl Pool {
    fn new() -> Pool {
        Pool { columns: Vec::new(), by_members: HashMap::new() }
    }

    /// Inserts a column, reporting how the pool changed. Empty member sets
    /// are rejected — they cover nothing and the presolved IP drops them,
    /// so admitting them would let the LP and IP disagree.
    fn insert(&mut self, mut members: Vec<usize>, cost: f64) -> PoolChange {
        members.sort_unstable();
        members.dedup();
        if members.is_empty() {
            return PoolChange::Unchanged;
        }
        match self.by_members.entry(members) {
            std::collections::hash_map::Entry::Vacant(e) => {
                let members = e.key().clone();
                self.columns.push((members, cost));
                e.insert(self.columns.len() - 1);
                PoolChange::Added(self.columns.len() - 1)
            }
            std::collections::hash_map::Entry::Occupied(e) => {
                let idx = *e.get();
                let held = &mut self.columns[idx].1;
                if cost < *held - 1e-12 {
                    *held = cost;
                    PoolChange::Cheaper(idx)
                } else {
                    PoolChange::Unchanged
                }
            }
        }
    }
}

/// The live master LP behind the loop: either the incremental revised
/// master, or a marker for the dense route (which rebuilds the model from
/// the pool on every solve and therefore keeps no state).
enum MasterState {
    Dense,
    Revised(Box<RevisedMaster>),
}

impl MasterState {
    /// Mirrors one [`PoolChange`] into the live master.
    fn apply(&mut self, pool: &Pool, change: PoolChange) {
        let MasterState::Revised(master) = self else { return };
        match change {
            PoolChange::Added(idx) => {
                let (members, cost) = &pool.columns[idx];
                master.append_column(members, *cost);
            }
            PoolChange::Cheaper(idx) => master.update_cost(idx, pool.columns[idx].1),
            PoolChange::Unchanged => {}
        }
    }

    /// Re-optimizes the master, returning `(duals, objective, artificial
    /// usage)`. One shared call site feeds the stats, so both engines
    /// account rounds, pivots and artificial usage identically. `None`
    /// only when the LP is unbounded/infeasible — unreachable for big-M
    /// masters (mirrors the dense route's unreachable arms).
    fn solve(
        &mut self,
        pool: &Pool,
        num_elements: usize,
        min_sets: Option<usize>,
        max_sets: Option<usize>,
        stats: &mut ColGenStats,
    ) -> Option<(Vec<f64>, f64, f64)> {
        stats.lp_solves += 1;
        let warm: Option<MasterLp> = match self {
            MasterState::Dense => None,
            // A `None` here is a numeric failure even the cold restart
            // could not clear; the dense rebuild below recovers exactly.
            MasterState::Revised(master) => master.solve(),
        };
        let (duals, objective, art_usage) = match warm {
            Some(lp) => {
                stats.master_pivots += lp.pivots;
                (lp.duals, lp.objective, lp.art_usage)
            }
            None => {
                let (model, art_vars) = master_model(pool, num_elements, min_sets, max_sets);
                let (result, pivots) = solve_lp_with_duals_counted(&model);
                stats.master_pivots += pivots;
                let (solution, duals) = match result {
                    LpDualResult::Optimal { solution, duals } => (solution, duals),
                    // Artificials keep the master primal-feasible and the
                    // costs are nonnegative, so neither arm is reachable.
                    LpDualResult::Infeasible | LpDualResult::Unbounded => return None,
                };
                let art_usage: f64 = art_vars.iter().map(|&v| solution.values[v]).sum();
                (duals, solution.objective, art_usage)
            }
        };
        if art_usage > ART_EPS {
            stats.artificial_rounds += 1;
        }
        Some((duals, objective, art_usage))
    }
}

/// Artificial mass above this means the restricted LP is not yet covering.
const ART_EPS: f64 = 1e-6;

/// Wentges smoothing state: a stability center `ŷ` blended into the raw
/// duals before pricing.
struct DualSmoother {
    alpha: f64,
    center: Option<Vec<f64>>,
}

impl DualSmoother {
    fn new(alpha: f64) -> DualSmoother {
        DualSmoother { alpha: alpha.clamp(0.0, 1.0 - 1e-9), center: None }
    }

    /// `ỹ = α·ŷ + (1−α)·y`; the first call seeds the center with `y`
    /// itself (no history to smooth against).
    fn smooth(&mut self, duals: &[f64]) -> Vec<f64> {
        match &self.center {
            Some(center) if center.len() == duals.len() => center
                .iter()
                .zip(duals)
                .map(|(s, y)| self.alpha * s + (1.0 - self.alpha) * y)
                .collect(),
            _ => {
                self.center = Some(duals.to_vec());
                duals.to_vec()
            }
        }
    }

    fn set_center(&mut self, center: Vec<f64>) {
        self.center = Some(center);
    }
}

/// Solves a set-partitioning instance by column generation over the
/// implicit pool behind `source`, starting from the `initial` columns
/// (typically a cheap feasible or near-feasible warm set — singletons, a
/// greedy cover). Returns `None` when the instance is infeasible: the
/// source priced out at `+∞` and still no exact cover within the bounds
/// exists.
pub fn solve_column_generation(
    num_elements: usize,
    bounds: (Option<usize>, Option<usize>),
    initial: &[(Vec<usize>, f64)],
    source: &mut dyn ColumnSource,
    options: &ColGenOptions,
) -> Option<ColGenSolution> {
    let (min_sets, max_sets) = bounds;
    let mut stats = ColGenStats { lp_bound: f64::NAN, ..Default::default() };
    if num_elements == 0 {
        // No elements: only empty sets could be selected and those are
        // not admissible columns, so the empty selection is the sole
        // candidate — feasible iff no minimum is demanded.
        if min_sets.unwrap_or(0) > 0 {
            return None;
        }
        return Some(ColGenSolution {
            columns: Vec::new(),
            cost: 0.0,
            proven_optimal: true,
            stats,
        });
    }
    if min_sets.is_some_and(|min| min > num_elements) {
        // Selected sets are disjoint and nonempty: at most one per element.
        return None;
    }

    let mut pool = Pool::new();
    let mut master = match options.master {
        MasterEngine::Dense => MasterState::Dense,
        MasterEngine::Revised => {
            MasterState::Revised(Box::new(RevisedMaster::new(num_elements, min_sets, max_sets)))
        }
    };
    for (members, cost) in initial {
        let change = pool.insert(members.clone(), *cost);
        if change != PoolChange::Unchanged {
            stats.columns_generated += 1;
        }
        master.apply(&pool, change);
    }
    let mut smoother = options.smoothing.then(|| DualSmoother::new(options.smoothing_alpha));

    let mut rounds_left = options.max_rounds;
    let mut incumbent: Option<SetPartitionSolution> = None;
    loop {
        // Inner loop: re-optimize the master and price until the LP is
        // optimal over the *full* implicit pool (an exact empty reply
        // under the true duals), or the round budget runs dry.
        let (duals, z_lp, art_usage, budget_out) = loop {
            let (duals, z_lp, art_usage) =
                master.solve(&pool, num_elements, min_sets, max_sets, &mut stats)?;
            if rounds_left == 0 {
                break (duals, z_lp, art_usage, true);
            }
            let request =
                PricingRequest { threshold: -options.eps, max_columns: options.pricing_batch };
            // Smoothed pass first (when it actually differs): a hit keeps
            // the loop moving and the blend becomes the new center; a miss
            // is a Wentges misprice — reset the center to the true duals
            // and let the exact pass below decide.
            let mut outcome: Option<bool> = None;
            if let Some(sm) = smoother.as_mut() {
                let smoothed = sm.smooth(&duals);
                if smoothed != duals {
                    rounds_left -= 1;
                    stats.pricing_calls += 1;
                    let per_set: f64 = smoothed[num_elements..].iter().sum();
                    let prices = DualPrices { element: &smoothed[..num_elements], per_set };
                    if price_into(&mut pool, &mut master, source, &prices, &request, &mut stats) {
                        sm.set_center(smoothed);
                        outcome = Some(true);
                    } else {
                        stats.mispricings += 1;
                        sm.set_center(duals.clone());
                    }
                }
            }
            if outcome.is_none() {
                if rounds_left == 0 {
                    break (duals, z_lp, art_usage, true);
                }
                rounds_left -= 1;
                stats.pricing_calls += 1;
                let per_set: f64 = duals[num_elements..].iter().sum();
                let prices = DualPrices { element: &duals[..num_elements], per_set };
                outcome =
                    Some(price_into(&mut pool, &mut master, source, &prices, &request, &mut stats));
            }
            if outcome != Some(true) {
                break (duals, z_lp, art_usage, false);
            }
        };
        let per_set: f64 = duals[num_elements..].iter().sum();
        let prices = DualPrices { element: &duals[..num_elements], per_set };

        if art_usage > ART_EPS {
            if budget_out {
                // Round budget exhausted while the master still leans on
                // artificials: the source was never proven empty, so the
                // instance is *not* known infeasible — degrade to a
                // best-effort restricted solve instead of reporting `None`.
                return degraded(num_elements, bounds, &pool, options, incumbent, stats);
            }
            // The LP itself needs artificials: the restricted pool cannot
            // even form a fractional cover. Ask for everything that is
            // left; if the implicit pool is exhausted the instance is
            // infeasible (the LP relaxation over the full pool has no
            // solution, so neither has the IP).
            match exhaust(
                &mut pool,
                &mut master,
                source,
                &prices,
                options,
                &mut rounds_left,
                &mut stats,
            ) {
                Exhaust::Grew => continue,
                Exhaust::ProvenEmpty => return None,
                Exhaust::Budget => {
                    return degraded(num_elements, bounds, &pool, options, incumbent, stats)
                }
            }
        }
        if !budget_out {
            // Only a priced-out LP value bounds the full problem; a
            // budget-truncated restricted optimum bounds nothing.
            stats.lp_bound = z_lp;
        }

        // Restricted IP over the real columns.
        stats.ip_solves += 1;
        match restricted_ip(num_elements, bounds, &pool, options) {
            None => {
                // LP-feasible but no integer cover in the restricted pool
                // (cardinality bounds, parity…): only the full pool can
                // decide, so fall back to exhaustive pricing.
                match exhaust(
                    &mut pool,
                    &mut master,
                    source,
                    &prices,
                    options,
                    &mut rounds_left,
                    &mut stats,
                ) {
                    Exhaust::Grew => continue,
                    Exhaust::ProvenEmpty | Exhaust::Budget => {
                        return incumbent.map(|s| finish(s, &pool, false, stats))
                    }
                }
            }
            Some(solution) => {
                let proven = solution.proven_optimal;
                let better = incumbent.as_ref().is_none_or(|inc| solution.cost < inc.cost - 1e-12);
                if better {
                    incumbent = Some(solution.clone());
                }
                if !proven || rounds_left == 0 || budget_out {
                    let best = incumbent.expect("incumbent was just set or better");
                    return Some(finish(best, &pool, false, stats));
                }
                let gap = solution.cost - z_lp;
                if gap <= options.eps {
                    let best = incumbent.expect("incumbent was just set or better");
                    return Some(finish(best, &pool, true, stats));
                }
                // Any cover cheaper than the incumbent is built entirely
                // from columns pricing below the gap (all reduced costs
                // are ≥ −eps after convergence and they sum to < gap).
                // Gap closing always prices with the *true* duals — the
                // optimality certificate cannot rest on a smoothed vector.
                rounds_left -= 1;
                stats.pricing_calls += 1;
                let request = PricingRequest {
                    threshold: gap + options.eps,
                    max_columns: options.pricing_batch,
                };
                let fresh =
                    price_into(&mut pool, &mut master, source, &prices, &request, &mut stats);
                if !fresh {
                    let best = incumbent.expect("incumbent was just set or better");
                    return Some(finish(best, &pool, true, stats));
                }
            }
        }
    }
}

/// The restricted IP over the current pool.
fn restricted_ip(
    num_elements: usize,
    bounds: (Option<usize>, Option<usize>),
    pool: &Pool,
    options: &ColGenOptions,
) -> Option<SetPartitionSolution> {
    let mut problem = SetPartitionProblem::new(num_elements);
    problem.min_sets = bounds.0;
    problem.max_sets = bounds.1;
    problem.max_nodes = options.max_nodes;
    for (members, cost) in &pool.columns {
        problem.add_set(members.clone(), *cost);
    }
    problem.solve_presolved(options.engine, &options.presolve)
}

/// Best-effort exit when the round budget died before the master shed its
/// artificials: the source was never proven empty, so `None` would wrongly
/// report a (possibly feasible) instance as infeasible. Solve the
/// restricted IP over whatever the pool holds; any cover it finds — or a
/// better earlier incumbent — returns unproven.
fn degraded(
    num_elements: usize,
    bounds: (Option<usize>, Option<usize>),
    pool: &Pool,
    options: &ColGenOptions,
    incumbent: Option<SetPartitionSolution>,
    mut stats: ColGenStats,
) -> Option<ColGenSolution> {
    stats.ip_solves += 1;
    let solution = match (restricted_ip(num_elements, bounds, pool, options), incumbent) {
        (Some(found), Some(inc)) => {
            if found.cost < inc.cost - 1e-12 {
                found
            } else {
                inc
            }
        }
        (Some(found), None) => found,
        (None, Some(inc)) => inc,
        (None, None) => return None,
    };
    Some(finish(solution, pool, false, stats))
}

/// Builds the restricted master LP: exactly-one rows per element, the
/// optional cardinality rows, and one big-M artificial per element (in
/// its cover row and the minimum row, never the maximum row, so the
/// master is always feasible while artificials cannot mask a violated
/// maximum). Returns the model and the artificial variable indices.
fn master_model(
    pool: &Pool,
    num_elements: usize,
    min_sets: Option<usize>,
    max_sets: Option<usize>,
) -> (Model, Vec<usize>) {
    let max_cost = pool.columns.iter().map(|(_, c)| c.abs()).fold(1.0, f64::max);
    let big_m = 10.0 * max_cost * (num_elements as f64 + 1.0);
    let mut model = Model::new();
    let vars: Vec<usize> = pool.columns.iter().map(|(_, cost)| model.add_var(*cost)).collect();
    let art_vars: Vec<usize> = (0..num_elements).map(|_| model.add_var(big_m)).collect();
    let mut cover: Vec<Vec<(usize, f64)>> =
        (0..num_elements).map(|e| vec![(art_vars[e], 1.0)]).collect();
    for (j, (members, _)) in pool.columns.iter().enumerate() {
        for &e in members {
            cover[e].push((vars[j], 1.0));
        }
    }
    for terms in cover {
        model.add_constraint(terms, Sense::Eq, 1.0);
    }
    if let Some(max) = max_sets {
        model.add_constraint(vars.iter().map(|&v| (v, 1.0)).collect(), Sense::Le, max as f64);
    }
    if let Some(min) = min_sets {
        let terms = vars.iter().chain(&art_vars).map(|&v| (v, 1.0)).collect();
        model.add_constraint(terms, Sense::Ge, min as f64);
    }
    (model, art_vars)
}

/// One pricing call folded into the pool (and mirrored into the live
/// master); returns whether anything new (or cheaper) arrived.
fn price_into(
    pool: &mut Pool,
    master: &mut MasterState,
    source: &mut dyn ColumnSource,
    prices: &DualPrices<'_>,
    request: &PricingRequest,
    stats: &mut ColGenStats,
) -> bool {
    let mut fresh = false;
    for (members, cost) in source.price(prices, request) {
        let change = pool.insert(members, cost);
        if change != PoolChange::Unchanged {
            stats.columns_generated += 1;
            fresh = true;
        }
        master.apply(pool, change);
    }
    fresh
}

/// How a call to [`exhaust`] ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Exhaust {
    /// The pool grew; re-solve the master and try again.
    Grew,
    /// The source replied empty without growing the pool: the implicit
    /// pool holds nothing beyond what the master already has — a *proof*.
    ProvenEmpty,
    /// The round budget ran out first. Nothing was proven; callers must
    /// not conclude infeasibility from this.
    Budget,
}

/// Prices with an infinite threshold until the source is exhausted, the
/// pool grows, or the budget runs out.
fn exhaust(
    pool: &mut Pool,
    master: &mut MasterState,
    source: &mut dyn ColumnSource,
    prices: &DualPrices<'_>,
    options: &ColGenOptions,
    rounds_left: &mut usize,
    stats: &mut ColGenStats,
) -> Exhaust {
    let mut grew = false;
    while *rounds_left > 0 {
        *rounds_left -= 1;
        stats.pricing_calls += 1;
        let request =
            PricingRequest { threshold: f64::INFINITY, max_columns: options.pricing_batch };
        let reply = source.price(prices, &request);
        if reply.is_empty() {
            return if grew { Exhaust::Grew } else { Exhaust::ProvenEmpty };
        }
        for (members, cost) in reply {
            let change = pool.insert(members, cost);
            if change != PoolChange::Unchanged {
                stats.columns_generated += 1;
                grew = true;
            }
            master.apply(pool, change);
        }
    }
    if grew {
        Exhaust::Grew
    } else {
        Exhaust::Budget
    }
}

/// Maps a restricted-pool solution back to its columns.
fn finish(
    solution: SetPartitionSolution,
    pool: &Pool,
    proven_optimal: bool,
    stats: ColGenStats,
) -> ColGenSolution {
    let mut columns: Vec<(Vec<usize>, f64)> =
        solution.selected.iter().map(|&i| pool.columns[i].clone()).collect();
    columns.sort_by(|a, b| a.0.cmp(&b.0));
    ColGenSolution {
        columns,
        cost: solution.cost,
        proven_optimal: proven_optimal && solution.proven_optimal,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn colgen_over(
        num_elements: usize,
        bounds: (Option<usize>, Option<usize>),
        pool: &[(&[usize], f64)],
        initial: usize,
    ) -> Option<ColGenSolution> {
        let columns: Vec<(Vec<usize>, f64)> = pool.iter().map(|(m, c)| (m.to_vec(), *c)).collect();
        let warm: Vec<(Vec<usize>, f64)> = columns[..initial].to_vec();
        let mut source = EnumeratedColumnSource::new(columns);
        solve_column_generation(num_elements, bounds, &warm, &mut source, &ColGenOptions::default())
    }

    fn oracle(
        num_elements: usize,
        bounds: (Option<usize>, Option<usize>),
        pool: &[(&[usize], f64)],
    ) -> Option<SetPartitionSolution> {
        let mut p = SetPartitionProblem::new(num_elements);
        p.min_sets = bounds.0;
        p.max_sets = bounds.1;
        for (members, cost) in pool {
            p.add_set(members.to_vec(), *cost);
        }
        p.solve(SolveEngine::Dlx)
    }

    fn assert_matches_oracle(
        num_elements: usize,
        bounds: (Option<usize>, Option<usize>),
        pool: &[(&[usize], f64)],
        initial: usize,
    ) -> Option<ColGenSolution> {
        let cg = colgen_over(num_elements, bounds, pool, initial);
        let oracle = oracle(num_elements, bounds, pool);
        match (&cg, &oracle) {
            (None, None) => {}
            (Some(cg), Some(oracle)) => {
                assert!(cg.proven_optimal, "{cg:?}");
                assert!((cg.cost - oracle.cost).abs() < 1e-9, "{cg:?} vs {oracle:?}");
                let mut covered = vec![0usize; num_elements];
                for (members, _) in &cg.columns {
                    for &e in members {
                        covered[e] += 1;
                    }
                }
                assert!(covered.iter().all(|&c| c == 1), "not an exact cover: {cg:?}");
            }
            other => panic!("routes disagree on feasibility: {other:?}"),
        }
        cg
    }

    #[test]
    fn prices_in_the_optimal_pair() {
        // Warm start: expensive singletons. The cheap pair {0,1} must be
        // priced in through the duals.
        let pool: &[(&[usize], f64)] =
            &[(&[0], 1.0), (&[1], 1.0), (&[0, 1], 0.5), (&[0, 1, 2], 9.0), (&[2], 0.3)];
        let s = assert_matches_oracle(3, (None, None), pool, 2).unwrap();
        assert!((s.cost - 0.8).abs() < 1e-9);
        assert_eq!(s.columns, vec![(vec![0, 1], 0.5), (vec![2], 0.3)]);
    }

    #[test]
    fn gap_closing_prices_past_the_lp_optimum() {
        // Odd cycle: the LP settles at 1.5 with the three pairs at ½ each
        // and reduced cost of the triple (1.55 − 1.5) = 0.05 > 0, so the
        // LP loop alone never admits it. Only the IP gap (1.7 − 1.5 = 0.2)
        // prices it in; the true optimum is the triple at 1.55.
        let pool: &[(&[usize], f64)] = &[
            (&[0], 0.7),
            (&[1], 0.7),
            (&[2], 0.7),
            (&[0, 1], 1.0),
            (&[1, 2], 1.0),
            (&[0, 2], 1.0),
            (&[0, 1, 2], 1.55),
        ];
        let s = assert_matches_oracle(3, (None, None), pool, 6).unwrap();
        assert!((s.cost - 1.55).abs() < 1e-9, "{s:?}");
        assert_eq!(s.columns.len(), 1);
        assert!(s.stats.ip_solves >= 2, "gap closing re-solved the IP: {:?}", s.stats);
    }

    #[test]
    fn infeasible_when_the_full_pool_cannot_cover() {
        let pool: &[(&[usize], f64)] = &[(&[0], 1.0), (&[1], 1.0)];
        assert!(colgen_over(3, (None, None), pool, 1).is_none());
    }

    #[test]
    fn cardinality_bounds_respected() {
        // Optimum without bounds is the three singletons; max_sets = 2
        // forces a pair in.
        let pool: &[(&[usize], f64)] =
            &[(&[0], 0.2), (&[1], 0.2), (&[2], 0.2), (&[0, 1], 1.0), (&[1, 2], 0.9)];
        let s = assert_matches_oracle(3, (None, Some(2)), pool, 3).unwrap();
        assert!((s.cost - 1.1).abs() < 1e-9, "{s:?}");
        let s = assert_matches_oracle(3, (Some(3), None), pool, 5).unwrap();
        assert!((s.cost - 0.6).abs() < 1e-9, "{s:?}");
    }

    #[test]
    fn restricted_infeasibility_triggers_exhaustive_pricing() {
        // Warm start covers only {0}; with max_sets = 1 the restricted IP
        // is infeasible until the full set {0,1,2} arrives.
        let pool: &[(&[usize], f64)] = &[(&[0], 0.1), (&[0, 1, 2], 2.0), (&[1], 0.1), (&[2], 0.1)];
        let s = assert_matches_oracle(3, (None, Some(1)), pool, 1).unwrap();
        assert!((s.cost - 2.0).abs() < 1e-9, "{s:?}");
    }

    #[test]
    fn infeasible_bounds_detected() {
        let pool: &[(&[usize], f64)] = &[(&[0, 1], 1.0), (&[0], 0.4), (&[1], 0.4)];
        // min_sets = 3 > num_elements is impossible.
        assert!(colgen_over(2, (Some(3), None), pool, 1).is_none());
        // max_sets = 0 cannot cover anything.
        assert!(colgen_over(2, (None, Some(0)), pool, 1).is_none());
    }

    #[test]
    fn empty_universe() {
        let s = colgen_over(0, (None, None), &[], 0).unwrap();
        assert!(s.columns.is_empty());
        assert_eq!(s.cost, 0.0);
        assert!(s.proven_optimal);
        assert!(colgen_over(0, (Some(1), None), &[], 0).is_none());
    }

    #[test]
    fn empty_warm_start_bootstraps_from_artificials() {
        // No initial columns at all: the first duals are pure big-M, which
        // price every useful column in immediately.
        let pool: &[(&[usize], f64)] = &[(&[0, 1], 1.0), (&[2], 0.5), (&[0], 0.8), (&[1], 0.8)];
        let s = assert_matches_oracle(3, (None, None), pool, 0).unwrap();
        assert!((s.cost - 1.5).abs() < 1e-9, "{s:?}");
    }

    #[test]
    fn duplicate_and_unsorted_columns_are_normalized() {
        let pool: &[(&[usize], f64)] =
            &[(&[1, 0], 1.0), (&[0, 1], 0.6), (&[1, 0, 1], 0.9), (&[0], 0.4), (&[1], 0.4)];
        let s = assert_matches_oracle(2, (None, None), pool, 5).unwrap();
        assert!((s.cost - 0.6).abs() < 1e-9, "{s:?}");
    }

    #[test]
    fn stats_track_the_run() {
        let pool: &[(&[usize], f64)] = &[(&[0], 1.0), (&[1], 1.0), (&[0, 1], 0.5)];
        let s = colgen_over(2, (None, None), pool, 2).unwrap();
        assert!(s.stats.lp_solves >= 1);
        assert!(s.stats.ip_solves >= 1);
        assert_eq!(s.stats.columns_generated, 3);
        assert!(s.stats.lp_bound.is_finite());
        assert!(s.stats.lp_bound <= s.cost + 1e-9);
        assert!(s.stats.master_pivots >= 1, "{:?}", s.stats);
    }

    fn colgen_with(
        num_elements: usize,
        bounds: (Option<usize>, Option<usize>),
        pool: &[(&[usize], f64)],
        initial: usize,
        options: &ColGenOptions,
    ) -> Option<ColGenSolution> {
        let columns: Vec<(Vec<usize>, f64)> = pool.iter().map(|(m, c)| (m.to_vec(), *c)).collect();
        let warm: Vec<(Vec<usize>, f64)> = columns[..initial].to_vec();
        let mut source = EnumeratedColumnSource::new(columns);
        solve_column_generation(num_elements, bounds, &warm, &mut source, options)
    }

    /// A borrowed test pool: element count plus `(members, cost)` columns.
    type PoolSpec<'a> = (usize, &'a [(&'a [usize], f64)]);

    /// Every (master engine × smoothing) combination returns the same
    /// cost on the same instance — the four routes are interchangeable.
    #[test]
    fn engines_and_smoothing_agree_on_cost() {
        let pools: &[PoolSpec<'_>] = &[
            (3, &[(&[0], 1.0), (&[1], 1.0), (&[0, 1], 0.5), (&[0, 1, 2], 9.0), (&[2], 0.3)]),
            (
                3,
                &[
                    (&[0], 0.7),
                    (&[1], 0.7),
                    (&[2], 0.7),
                    (&[0, 1], 1.0),
                    (&[1, 2], 1.0),
                    (&[0, 2], 1.0),
                    (&[0, 1, 2], 1.55),
                ],
            ),
            (4, &[(&[0, 1], 1.0), (&[2, 3], 1.0), (&[0, 1, 2, 3], 1.5), (&[1, 2], 0.4)]),
        ];
        for &(n, pool) in pools {
            let mut costs = Vec::new();
            for master in [MasterEngine::Revised, MasterEngine::Dense] {
                for smoothing in [true, false] {
                    let options = ColGenOptions { master, smoothing, ..ColGenOptions::default() };
                    let s = colgen_with(n, (None, None), pool, 1, &options)
                        .unwrap_or_else(|| panic!("{master:?}/{smoothing} found nothing"));
                    assert!(s.proven_optimal, "{master:?}/{smoothing}: {s:?}");
                    costs.push(s.cost);
                }
            }
            for w in costs.windows(2) {
                assert!((w[0] - w[1]).abs() < 1e-9, "route costs diverge: {costs:?}");
            }
        }
    }

    /// Budget exhaustion while the master still runs on artificials must
    /// degrade to a best-effort answer, not claim infeasibility: the
    /// source was never proven empty. (Regression: the old loop returned
    /// `None` here.)
    #[test]
    fn budget_exhaustion_during_bootstrap_is_not_infeasible() {
        let pool: &[(&[usize], f64)] = &[(&[0], 1.0), (&[1], 1.0), (&[2], 1.0), (&[0, 1, 2], 1.5)];
        // One round: enough to price *something* in, never enough to
        // clear the artificials and prove anything.
        let options = ColGenOptions { max_rounds: 1, ..ColGenOptions::default() };
        let s = colgen_with(3, (None, None), pool, 0, &options)
            .expect("feasible instance must not degrade to None");
        assert!(!s.proven_optimal, "{s:?}");
        assert!(s.stats.lp_bound.is_nan(), "truncated run has no valid bound: {:?}", s.stats);
        // Zero rounds with a warm cover: no pricing ever happens, yet the
        // restricted IP still answers — unproven, budget-bound.
        let options = ColGenOptions { max_rounds: 0, ..ColGenOptions::default() };
        let s = colgen_with(3, (None, None), pool, 4, &options).expect("warm cover exists");
        assert!(!s.proven_optimal, "{s:?}");
        assert!((s.cost - 1.5).abs() < 1e-9, "{s:?}");
    }

    /// The artificial bootstrap is counted once per master solve that
    /// still carries artificial mass, on either engine.
    #[test]
    fn artificial_rounds_counted_on_both_engines() {
        let pool: &[(&[usize], f64)] = &[(&[0, 1], 1.0), (&[2], 0.5)];
        for master in [MasterEngine::Revised, MasterEngine::Dense] {
            let options = ColGenOptions { master, ..ColGenOptions::default() };
            let s = colgen_with(3, (None, None), pool, 0, &options).unwrap();
            assert!(s.stats.artificial_rounds >= 1, "{master:?}: {:?}", s.stats);
            assert!(s.stats.lp_bound.is_finite(), "{master:?}: {:?}", s.stats);
        }
    }

    /// α = 0 degenerates smoothing to the exact duals: identical stats to
    /// the unsmoothed run (no misprice can ever occur because the blend
    /// equals the true vector and the smoothed pass is skipped).
    #[test]
    fn zero_alpha_smoothing_is_inert() {
        let pool: &[(&[usize], f64)] =
            &[(&[0], 1.0), (&[1], 1.0), (&[0, 1], 0.5), (&[0, 1, 2], 9.0), (&[2], 0.3)];
        let smoothed = ColGenOptions { smoothing_alpha: 0.0, ..ColGenOptions::default() };
        let plain = ColGenOptions { smoothing: false, ..ColGenOptions::default() };
        let a = colgen_with(3, (None, None), pool, 2, &smoothed).unwrap();
        let b = colgen_with(3, (None, None), pool, 2, &plain).unwrap();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.columns, b.columns);
    }
}
