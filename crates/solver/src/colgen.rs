//! Column generation for weighted set partitioning.
//!
//! GECCO's Step-2 instances stop being enumerable once richer candidate
//! sources multiply the pool, so this module solves the set-partitioning
//! MIP without ever materializing the full column set. The classic
//! restricted-master scheme:
//!
//! 1. **Restricted master LP** — the LP relaxation over the columns seen
//!    so far, kept feasible by big-M artificial columns (one per element,
//!    counted toward the minimum-cardinality row so residual `min_sets`
//!    bounds cannot strand the master). [`crate::simplex::solve_lp_with_duals`]
//!    returns the optimal dual prices.
//! 2. **Pricing** — a caller-supplied [`ColumnSource`] receives the duals
//!    and returns columns whose reduced cost
//!    `c_S − Σ_{e∈S} y_e − y_card` lies below a threshold. An empty reply
//!    is a *proof* that no such column exists; that contract is what makes
//!    the loop exact.
//! 3. **Restricted IP** — once the LP prices out (no column below `−ε`),
//!    the existing presolve → decompose → branch-and-bound pipeline solves
//!    the integer program over the restricted pool.
//! 4. **Gap closing** — for set partitioning, any exact cover `S` obeys
//!    `cost(S) ≥ z_LP + Σ_{j∈S} rc_j` (complementary slackness absorbs the
//!    cardinality rows), and after convergence every column — seen or not —
//!    has `rc ≥ 0`. So a cover beating the incumbent must contain a column
//!    with `rc < z_IP − z_LP`: threshold-pricing at the gap either grows
//!    the pool (and the loop repeats) or proves the incumbent optimal.
//!
//! The enumerated presolved route ([`SetPartitionProblem::solve_presolved`])
//! stays as the differential oracle: on enumerable pools both routes return
//! selections with bit-identical cost and validity (property-tested in
//! `gecco-core`).

use crate::model::{Model, Sense};
use crate::presolve::PresolveOptions;
use crate::setpart::{SetPartitionProblem, SetPartitionSolution, SolveEngine};
use crate::simplex::{solve_lp_with_duals, LpDualResult};
use std::collections::HashMap;

/// Dual prices handed to a [`ColumnSource`].
#[derive(Debug, Clone)]
pub struct DualPrices<'a> {
    /// `element[e]` is the dual of element `e`'s exactly-one row.
    pub element: &'a [f64],
    /// Sum of the cardinality-row duals; every set pays it once.
    pub per_set: f64,
}

impl DualPrices<'_> {
    /// Reduced cost of a column: `cost − Σ_{e∈members} y_e − per_set`.
    pub fn reduced_cost(&self, members: &[usize], cost: f64) -> f64 {
        let mut rc = cost - self.per_set;
        for &e in members {
            rc -= self.element[e];
        }
        rc
    }
}

/// One pricing request.
#[derive(Debug, Clone, Copy)]
pub struct PricingRequest {
    /// Return only columns whose reduced cost is strictly below this.
    /// `f64::INFINITY` asks for every column not yet returned (the driver
    /// falls back to it when the restricted pool cannot even form a cover).
    pub threshold: f64,
    /// Soft cap on columns per reply; the driver keeps asking while
    /// replies are non-empty, so truncating is always safe.
    pub max_columns: usize,
}

/// A lazy supplier of set-partitioning columns, driven by LP duals.
///
/// # Contract
///
/// * Each reply contains columns `(members, cost)` with reduced cost below
///   `request.threshold` under `prices`; members need not be sorted and
///   duplicates of earlier replies are tolerated (the driver dedups and
///   keeps the cheapest), but a source should avoid resending columns — the
///   driver treats a reply with no *new* columns as exhaustive.
/// * **An empty reply is a proof** that no column of the full (implicit)
///   pool prices below the threshold. Exactness of the whole loop rests on
///   this: a source that forgets columns silently turns "proven optimal"
///   into "optimal over what the source showed".
pub trait ColumnSource {
    /// Prices columns against `prices` per `request`.
    fn price(
        &mut self,
        prices: &DualPrices<'_>,
        request: &PricingRequest,
    ) -> Vec<(Vec<usize>, f64)>;
}

/// A [`ColumnSource`] over a fully materialized pool — the test/bench
/// harness and the bridge for callers that already enumerated candidates.
#[derive(Debug, Clone)]
pub struct EnumeratedColumnSource {
    columns: Vec<(Vec<usize>, f64)>,
    returned: Vec<bool>,
}

impl EnumeratedColumnSource {
    /// Wraps an explicit column pool.
    pub fn new(columns: Vec<(Vec<usize>, f64)>) -> Self {
        let returned = vec![false; columns.len()];
        EnumeratedColumnSource { columns, returned }
    }
}

impl ColumnSource for EnumeratedColumnSource {
    fn price(
        &mut self,
        prices: &DualPrices<'_>,
        request: &PricingRequest,
    ) -> Vec<(Vec<usize>, f64)> {
        let mut out = Vec::new();
        for (j, (members, cost)) in self.columns.iter().enumerate() {
            if self.returned[j] {
                continue;
            }
            if prices.reduced_cost(members, *cost) < request.threshold {
                self.returned[j] = true;
                out.push((members.clone(), *cost));
                if out.len() >= request.max_columns {
                    break;
                }
            }
        }
        out
    }
}

/// Tuning knobs for the restricted-master loop.
#[derive(Debug, Clone)]
pub struct ColGenOptions {
    /// Engine for the restricted integer solves.
    pub engine: SolveEngine,
    /// Presolve configuration for the restricted integer solves.
    pub presolve: PresolveOptions,
    /// Node budget per restricted integer solve (0 = engine default).
    pub max_nodes: usize,
    /// Cap on pricing calls across the whole run; hitting it degrades the
    /// result to `proven_optimal: false` instead of looping forever on a
    /// misbehaving source.
    pub max_rounds: usize,
    /// `max_columns` per pricing request.
    pub pricing_batch: usize,
    /// Reduced-cost tolerance: the LP loop prices at `−eps`, gap closing
    /// adds `+eps` of slack so float noise never hides a useful column.
    pub eps: f64,
}

impl Default for ColGenOptions {
    fn default() -> Self {
        ColGenOptions {
            engine: SolveEngine::default(),
            presolve: PresolveOptions::default(),
            max_nodes: 0,
            max_rounds: 10_000,
            pricing_batch: 256,
            eps: 1e-7,
        }
    }
}

/// Counters from one column-generation run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ColGenStats {
    /// Master LP solves.
    pub lp_solves: usize,
    /// Pricing calls answered by the source.
    pub pricing_calls: usize,
    /// Columns priced into the master (after dedup).
    pub columns_generated: usize,
    /// Restricted integer solves.
    pub ip_solves: usize,
    /// Final LP relaxation value (a valid global lower bound once the LP
    /// priced out); `NAN` if the master never reached optimality.
    pub lp_bound: f64,
}

/// The outcome of [`solve_column_generation`].
#[derive(Debug, Clone)]
pub struct ColGenSolution {
    /// Selected columns `(sorted members, cost)`, ordered by members.
    pub columns: Vec<(Vec<usize>, f64)>,
    /// Total cost of the selection.
    pub cost: f64,
    /// Whether the gap-closing loop proved global optimality (false when
    /// a node budget or `max_rounds` ran out).
    pub proven_optimal: bool,
    /// Run counters.
    pub stats: ColGenStats,
}

/// The restricted-master pool: dedup by member set, cheapest cost wins.
struct Pool {
    columns: Vec<(Vec<usize>, f64)>,
    by_members: HashMap<Vec<usize>, usize>,
}

impl Pool {
    fn new() -> Pool {
        Pool { columns: Vec::new(), by_members: HashMap::new() }
    }

    /// Inserts a column; returns whether the pool improved (new member set
    /// or strictly cheaper cost for a known one). Empty member sets are
    /// rejected — they cover nothing and the presolved IP drops them, so
    /// admitting them would let the LP and IP disagree.
    fn insert(&mut self, mut members: Vec<usize>, cost: f64) -> bool {
        members.sort_unstable();
        members.dedup();
        if members.is_empty() {
            return false;
        }
        match self.by_members.entry(members) {
            std::collections::hash_map::Entry::Vacant(e) => {
                let members = e.key().clone();
                self.columns.push((members, cost));
                e.insert(self.columns.len() - 1);
                true
            }
            std::collections::hash_map::Entry::Occupied(e) => {
                let held = &mut self.columns[*e.get()].1;
                if cost < *held - 1e-12 {
                    *held = cost;
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// Solves a set-partitioning instance by column generation over the
/// implicit pool behind `source`, starting from the `initial` columns
/// (typically a cheap feasible or near-feasible warm set — singletons, a
/// greedy cover). Returns `None` when the instance is infeasible: the
/// source priced out at `+∞` and still no exact cover within the bounds
/// exists.
pub fn solve_column_generation(
    num_elements: usize,
    bounds: (Option<usize>, Option<usize>),
    initial: &[(Vec<usize>, f64)],
    source: &mut dyn ColumnSource,
    options: &ColGenOptions,
) -> Option<ColGenSolution> {
    let (min_sets, max_sets) = bounds;
    let mut stats = ColGenStats { lp_bound: f64::NAN, ..Default::default() };
    if num_elements == 0 {
        // No elements: only empty sets could be selected and those are
        // not admissible columns, so the empty selection is the sole
        // candidate — feasible iff no minimum is demanded.
        if min_sets.unwrap_or(0) > 0 {
            return None;
        }
        return Some(ColGenSolution {
            columns: Vec::new(),
            cost: 0.0,
            proven_optimal: true,
            stats,
        });
    }
    if min_sets.is_some_and(|min| min > num_elements) {
        // Selected sets are disjoint and nonempty: at most one per element.
        return None;
    }

    let mut pool = Pool::new();
    for (members, cost) in initial {
        if pool.insert(members.clone(), *cost) {
            stats.columns_generated += 1;
        }
    }

    let mut rounds_left = options.max_rounds;
    let mut incumbent: Option<SetPartitionSolution> = None;
    loop {
        // Inner loop: re-solve the master and price until the LP is
        // optimal over the *full* implicit pool.
        let (duals, per_set, z_lp, art_usage) = loop {
            let (model, art_vars) = master_model(&pool, num_elements, min_sets, max_sets);
            stats.lp_solves += 1;
            let (solution, duals) = match solve_lp_with_duals(&model) {
                LpDualResult::Optimal { solution, duals } => (solution, duals),
                // Artificials keep the master primal-feasible and the
                // costs are nonnegative, so neither arm is reachable.
                LpDualResult::Infeasible | LpDualResult::Unbounded => return None,
            };
            let art_usage: f64 = art_vars.iter().map(|&v| solution.values[v]).sum();
            let per_set: f64 = duals[num_elements..].iter().sum();
            let prices = DualPrices { element: &duals[..num_elements], per_set };
            if rounds_left == 0 {
                break (duals, per_set, solution.objective, art_usage);
            }
            rounds_left -= 1;
            stats.pricing_calls += 1;
            let request =
                PricingRequest { threshold: -options.eps, max_columns: options.pricing_batch };
            let fresh = price_into(&mut pool, source, &prices, &request, &mut stats);
            if !fresh {
                break (duals, per_set, solution.objective, art_usage);
            }
        };
        let prices = DualPrices { element: &duals[..num_elements], per_set };

        if art_usage > 1e-6 {
            // The LP itself needs artificials: the restricted pool cannot
            // even form a fractional cover. Ask for everything that is
            // left; if the implicit pool is exhausted the instance is
            // infeasible (the LP relaxation over the full pool has no
            // solution, so neither has the IP).
            if !exhaust(&mut pool, source, &prices, options, &mut rounds_left, &mut stats) {
                return None;
            }
            continue;
        }
        stats.lp_bound = z_lp;

        // Restricted IP over the real columns.
        let mut problem = SetPartitionProblem::new(num_elements);
        problem.min_sets = min_sets;
        problem.max_sets = max_sets;
        problem.max_nodes = options.max_nodes;
        for (members, cost) in &pool.columns {
            problem.add_set(members.clone(), *cost);
        }
        stats.ip_solves += 1;
        match problem.solve_presolved(options.engine, &options.presolve) {
            None => {
                // LP-feasible but no integer cover in the restricted pool
                // (cardinality bounds, parity…): only the full pool can
                // decide, so fall back to exhaustive pricing.
                if !exhaust(&mut pool, source, &prices, options, &mut rounds_left, &mut stats) {
                    return incumbent.map(|s| finish(s, &pool, false, stats));
                }
                continue;
            }
            Some(solution) => {
                let proven = solution.proven_optimal;
                let better = incumbent.as_ref().is_none_or(|inc| solution.cost < inc.cost - 1e-12);
                if better {
                    incumbent = Some(solution.clone());
                }
                if !proven || rounds_left == 0 {
                    let best = incumbent.expect("incumbent was just set or better");
                    return Some(finish(best, &pool, false, stats));
                }
                let gap = solution.cost - z_lp;
                if gap <= options.eps {
                    let best = incumbent.expect("incumbent was just set or better");
                    return Some(finish(best, &pool, true, stats));
                }
                // Any cover cheaper than the incumbent is built entirely
                // from columns pricing below the gap (all reduced costs
                // are ≥ −eps after convergence and they sum to < gap).
                rounds_left -= 1;
                stats.pricing_calls += 1;
                let request = PricingRequest {
                    threshold: gap + options.eps,
                    max_columns: options.pricing_batch,
                };
                let fresh = price_into(&mut pool, source, &prices, &request, &mut stats);
                if !fresh {
                    let best = incumbent.expect("incumbent was just set or better");
                    return Some(finish(best, &pool, true, stats));
                }
            }
        }
    }
}

/// Builds the restricted master LP: exactly-one rows per element, the
/// optional cardinality rows, and one big-M artificial per element (in
/// its cover row and the minimum row, never the maximum row, so the
/// master is always feasible while artificials cannot mask a violated
/// maximum). Returns the model and the artificial variable indices.
fn master_model(
    pool: &Pool,
    num_elements: usize,
    min_sets: Option<usize>,
    max_sets: Option<usize>,
) -> (Model, Vec<usize>) {
    let max_cost = pool.columns.iter().map(|(_, c)| c.abs()).fold(1.0, f64::max);
    let big_m = 10.0 * max_cost * (num_elements as f64 + 1.0);
    let mut model = Model::new();
    let vars: Vec<usize> = pool.columns.iter().map(|(_, cost)| model.add_var(*cost)).collect();
    let art_vars: Vec<usize> = (0..num_elements).map(|_| model.add_var(big_m)).collect();
    let mut cover: Vec<Vec<(usize, f64)>> =
        (0..num_elements).map(|e| vec![(art_vars[e], 1.0)]).collect();
    for (j, (members, _)) in pool.columns.iter().enumerate() {
        for &e in members {
            cover[e].push((vars[j], 1.0));
        }
    }
    for terms in cover {
        model.add_constraint(terms, Sense::Eq, 1.0);
    }
    if let Some(max) = max_sets {
        model.add_constraint(vars.iter().map(|&v| (v, 1.0)).collect(), Sense::Le, max as f64);
    }
    if let Some(min) = min_sets {
        let terms = vars.iter().chain(&art_vars).map(|&v| (v, 1.0)).collect();
        model.add_constraint(terms, Sense::Ge, min as f64);
    }
    (model, art_vars)
}

/// One pricing call folded into the pool; returns whether anything new
/// (or cheaper) arrived.
fn price_into(
    pool: &mut Pool,
    source: &mut dyn ColumnSource,
    prices: &DualPrices<'_>,
    request: &PricingRequest,
    stats: &mut ColGenStats,
) -> bool {
    let mut fresh = false;
    for (members, cost) in source.price(prices, request) {
        if pool.insert(members, cost) {
            stats.columns_generated += 1;
            fresh = true;
        }
    }
    fresh
}

/// Prices with an infinite threshold until the source is exhausted.
/// Returns whether the pool grew at all.
fn exhaust(
    pool: &mut Pool,
    source: &mut dyn ColumnSource,
    prices: &DualPrices<'_>,
    options: &ColGenOptions,
    rounds_left: &mut usize,
    stats: &mut ColGenStats,
) -> bool {
    let mut grew = false;
    while *rounds_left > 0 {
        *rounds_left -= 1;
        stats.pricing_calls += 1;
        let request =
            PricingRequest { threshold: f64::INFINITY, max_columns: options.pricing_batch };
        let reply = source.price(prices, &request);
        if reply.is_empty() {
            return grew;
        }
        for (members, cost) in reply {
            if pool.insert(members, cost) {
                stats.columns_generated += 1;
                grew = true;
            }
        }
    }
    grew
}

/// Maps a restricted-pool solution back to its columns.
fn finish(
    solution: SetPartitionSolution,
    pool: &Pool,
    proven_optimal: bool,
    stats: ColGenStats,
) -> ColGenSolution {
    let mut columns: Vec<(Vec<usize>, f64)> =
        solution.selected.iter().map(|&i| pool.columns[i].clone()).collect();
    columns.sort_by(|a, b| a.0.cmp(&b.0));
    ColGenSolution {
        columns,
        cost: solution.cost,
        proven_optimal: proven_optimal && solution.proven_optimal,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn colgen_over(
        num_elements: usize,
        bounds: (Option<usize>, Option<usize>),
        pool: &[(&[usize], f64)],
        initial: usize,
    ) -> Option<ColGenSolution> {
        let columns: Vec<(Vec<usize>, f64)> = pool.iter().map(|(m, c)| (m.to_vec(), *c)).collect();
        let warm: Vec<(Vec<usize>, f64)> = columns[..initial].to_vec();
        let mut source = EnumeratedColumnSource::new(columns);
        solve_column_generation(num_elements, bounds, &warm, &mut source, &ColGenOptions::default())
    }

    fn oracle(
        num_elements: usize,
        bounds: (Option<usize>, Option<usize>),
        pool: &[(&[usize], f64)],
    ) -> Option<SetPartitionSolution> {
        let mut p = SetPartitionProblem::new(num_elements);
        p.min_sets = bounds.0;
        p.max_sets = bounds.1;
        for (members, cost) in pool {
            p.add_set(members.to_vec(), *cost);
        }
        p.solve(SolveEngine::Dlx)
    }

    fn assert_matches_oracle(
        num_elements: usize,
        bounds: (Option<usize>, Option<usize>),
        pool: &[(&[usize], f64)],
        initial: usize,
    ) -> Option<ColGenSolution> {
        let cg = colgen_over(num_elements, bounds, pool, initial);
        let oracle = oracle(num_elements, bounds, pool);
        match (&cg, &oracle) {
            (None, None) => {}
            (Some(cg), Some(oracle)) => {
                assert!(cg.proven_optimal, "{cg:?}");
                assert!((cg.cost - oracle.cost).abs() < 1e-9, "{cg:?} vs {oracle:?}");
                let mut covered = vec![0usize; num_elements];
                for (members, _) in &cg.columns {
                    for &e in members {
                        covered[e] += 1;
                    }
                }
                assert!(covered.iter().all(|&c| c == 1), "not an exact cover: {cg:?}");
            }
            other => panic!("routes disagree on feasibility: {other:?}"),
        }
        cg
    }

    #[test]
    fn prices_in_the_optimal_pair() {
        // Warm start: expensive singletons. The cheap pair {0,1} must be
        // priced in through the duals.
        let pool: &[(&[usize], f64)] =
            &[(&[0], 1.0), (&[1], 1.0), (&[0, 1], 0.5), (&[0, 1, 2], 9.0), (&[2], 0.3)];
        let s = assert_matches_oracle(3, (None, None), pool, 2).unwrap();
        assert!((s.cost - 0.8).abs() < 1e-9);
        assert_eq!(s.columns, vec![(vec![0, 1], 0.5), (vec![2], 0.3)]);
    }

    #[test]
    fn gap_closing_prices_past_the_lp_optimum() {
        // Odd cycle: the LP settles at 1.5 with the three pairs at ½ each
        // and reduced cost of the triple (1.55 − 1.5) = 0.05 > 0, so the
        // LP loop alone never admits it. Only the IP gap (1.7 − 1.5 = 0.2)
        // prices it in; the true optimum is the triple at 1.55.
        let pool: &[(&[usize], f64)] = &[
            (&[0], 0.7),
            (&[1], 0.7),
            (&[2], 0.7),
            (&[0, 1], 1.0),
            (&[1, 2], 1.0),
            (&[0, 2], 1.0),
            (&[0, 1, 2], 1.55),
        ];
        let s = assert_matches_oracle(3, (None, None), pool, 6).unwrap();
        assert!((s.cost - 1.55).abs() < 1e-9, "{s:?}");
        assert_eq!(s.columns.len(), 1);
        assert!(s.stats.ip_solves >= 2, "gap closing re-solved the IP: {:?}", s.stats);
    }

    #[test]
    fn infeasible_when_the_full_pool_cannot_cover() {
        let pool: &[(&[usize], f64)] = &[(&[0], 1.0), (&[1], 1.0)];
        assert!(colgen_over(3, (None, None), pool, 1).is_none());
    }

    #[test]
    fn cardinality_bounds_respected() {
        // Optimum without bounds is the three singletons; max_sets = 2
        // forces a pair in.
        let pool: &[(&[usize], f64)] =
            &[(&[0], 0.2), (&[1], 0.2), (&[2], 0.2), (&[0, 1], 1.0), (&[1, 2], 0.9)];
        let s = assert_matches_oracle(3, (None, Some(2)), pool, 3).unwrap();
        assert!((s.cost - 1.1).abs() < 1e-9, "{s:?}");
        let s = assert_matches_oracle(3, (Some(3), None), pool, 5).unwrap();
        assert!((s.cost - 0.6).abs() < 1e-9, "{s:?}");
    }

    #[test]
    fn restricted_infeasibility_triggers_exhaustive_pricing() {
        // Warm start covers only {0}; with max_sets = 1 the restricted IP
        // is infeasible until the full set {0,1,2} arrives.
        let pool: &[(&[usize], f64)] = &[(&[0], 0.1), (&[0, 1, 2], 2.0), (&[1], 0.1), (&[2], 0.1)];
        let s = assert_matches_oracle(3, (None, Some(1)), pool, 1).unwrap();
        assert!((s.cost - 2.0).abs() < 1e-9, "{s:?}");
    }

    #[test]
    fn infeasible_bounds_detected() {
        let pool: &[(&[usize], f64)] = &[(&[0, 1], 1.0), (&[0], 0.4), (&[1], 0.4)];
        // min_sets = 3 > num_elements is impossible.
        assert!(colgen_over(2, (Some(3), None), pool, 1).is_none());
        // max_sets = 0 cannot cover anything.
        assert!(colgen_over(2, (None, Some(0)), pool, 1).is_none());
    }

    #[test]
    fn empty_universe() {
        let s = colgen_over(0, (None, None), &[], 0).unwrap();
        assert!(s.columns.is_empty());
        assert_eq!(s.cost, 0.0);
        assert!(s.proven_optimal);
        assert!(colgen_over(0, (Some(1), None), &[], 0).is_none());
    }

    #[test]
    fn empty_warm_start_bootstraps_from_artificials() {
        // No initial columns at all: the first duals are pure big-M, which
        // price every useful column in immediately.
        let pool: &[(&[usize], f64)] = &[(&[0, 1], 1.0), (&[2], 0.5), (&[0], 0.8), (&[1], 0.8)];
        let s = assert_matches_oracle(3, (None, None), pool, 0).unwrap();
        assert!((s.cost - 1.5).abs() < 1e-9, "{s:?}");
    }

    #[test]
    fn duplicate_and_unsorted_columns_are_normalized() {
        let pool: &[(&[usize], f64)] =
            &[(&[1, 0], 1.0), (&[0, 1], 0.6), (&[1, 0, 1], 0.9), (&[0], 0.4), (&[1], 0.4)];
        let s = assert_matches_oracle(2, (None, None), pool, 5).unwrap();
        assert!((s.cost - 0.6).abs() < 1e-9, "{s:?}");
    }

    #[test]
    fn stats_track_the_run() {
        let pool: &[(&[usize], f64)] = &[(&[0], 1.0), (&[1], 1.0), (&[0, 1], 0.5)];
        let s = colgen_over(2, (None, None), pool, 2).unwrap();
        assert!(s.stats.lp_solves >= 1);
        assert!(s.stats.ip_solves >= 1);
        assert_eq!(s.stats.columns_generated, 3);
        assert!(s.stats.lp_bound.is_finite());
        assert!(s.stats.lp_bound <= s.cost + 1e-9);
    }
}
