//! Weighted set partitioning: the shared problem type for GECCO's Step 2.
//!
//! §V-C formalizes group selection as a MIP over a bipartite
//! candidate/class graph: minimize `Σ dist(gᵢ)·selected_{gᵢ}` subject to
//! every class being covered by exactly one selected candidate (Eqs. 3–4),
//! optionally bounding the number of selected groups (Eq. 5). Both solver
//! backends accept this type, so they can be cross-validated.

use crate::branch_bound::{solve_binary_program, BnbOptions, BnbResult};
use crate::dlx::{CoverOutcome, ExactCover};
use crate::model::{Model, Sense};

/// Which backend solves the partitioning problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolveEngine {
    /// Dancing-links exact cover with cost-based branch-and-bound — the
    /// production engine.
    #[default]
    Dlx,
    /// Generic binary program via simplex-based branch-and-bound — the
    /// reference engine for cross-validation and ablation.
    SimplexBnb,
}

/// A weighted set-partitioning instance.
#[derive(Debug, Clone, Default)]
pub struct SetPartitionProblem {
    /// Number of elements that must each be covered exactly once.
    pub num_elements: usize,
    /// Candidate sets: `(member elements, cost)`.
    pub sets: Vec<(Vec<usize>, f64)>,
    /// Minimum number of selected sets (Eq. 5, `≥ y`).
    pub min_sets: Option<usize>,
    /// Maximum number of selected sets (Eq. 5, `≤ x`).
    pub max_sets: Option<usize>,
    /// Search budget (nodes); `0` means the default of 5 million.
    pub max_nodes: usize,
}

/// A solution to a [`SetPartitionProblem`].
#[derive(Debug, Clone, PartialEq)]
pub struct SetPartitionSolution {
    /// Indexes of selected sets (ascending).
    pub selected: Vec<usize>,
    /// Total cost of the selection.
    pub cost: f64,
    /// Whether optimality was proven (false when the node budget ran out).
    pub proven_optimal: bool,
}

impl SetPartitionProblem {
    /// Creates an instance over `num_elements` elements.
    pub fn new(num_elements: usize) -> Self {
        SetPartitionProblem { num_elements, ..Default::default() }
    }

    /// Adds a candidate set; returns its index.
    pub fn add_set(&mut self, members: Vec<usize>, cost: f64) -> usize {
        self.sets.push((members, cost));
        self.sets.len() - 1
    }

    fn budget(&self) -> usize {
        if self.max_nodes == 0 {
            5_000_000
        } else {
            self.max_nodes
        }
    }

    /// Solves with the chosen engine; `None` means infeasible (or budget
    /// exhausted without any cover found).
    pub fn solve(&self, engine: SolveEngine) -> Option<SetPartitionSolution> {
        match engine {
            SolveEngine::Dlx => self.solve_dlx(),
            SolveEngine::SimplexBnb => self.solve_bnb(),
        }
    }

    fn solve_dlx(&self) -> Option<SetPartitionSolution> {
        let mut ec = ExactCover::new(self.num_elements);
        for (members, cost) in &self.sets {
            ec.add_row(members.clone(), *cost);
        }
        match ec.solve(self.min_sets, self.max_sets, self.budget()) {
            CoverOutcome::Optimal { mut rows, cost } => {
                rows.sort_unstable();
                Some(SetPartitionSolution { selected: rows, cost, proven_optimal: true })
            }
            CoverOutcome::Feasible { mut rows, cost } => {
                rows.sort_unstable();
                Some(SetPartitionSolution { selected: rows, cost, proven_optimal: false })
            }
            CoverOutcome::Infeasible | CoverOutcome::Unknown => None,
        }
    }

    fn solve_bnb(&self) -> Option<SetPartitionSolution> {
        let mut model = Model::new();
        let vars: Vec<usize> = self.sets.iter().map(|(_, cost)| model.add_var(*cost)).collect();
        // Eq. 3/4 combined: each element covered by exactly one selected set.
        for element in 0..self.num_elements {
            let terms: Vec<(usize, f64)> = self
                .sets
                .iter()
                .enumerate()
                .filter(|(_, (members, _))| members.contains(&element))
                .map(|(i, _)| (vars[i], 1.0))
                .collect();
            model.add_constraint(terms, Sense::Eq, 1.0);
        }
        // Eq. 5: cardinality bounds.
        if let Some(max) = self.max_sets {
            model.add_constraint(vars.iter().map(|&v| (v, 1.0)).collect(), Sense::Le, max as f64);
        }
        if let Some(min) = self.min_sets {
            model.add_constraint(vars.iter().map(|&v| (v, 1.0)).collect(), Sense::Ge, min as f64);
        }
        match solve_binary_program(
            &model,
            BnbOptions { max_nodes: self.budget(), ..Default::default() },
        ) {
            BnbResult::Optimal { values, objective } => {
                let selected: Vec<usize> =
                    (0..self.sets.len()).filter(|&i| values[vars[i]] > 0.5).collect();
                Some(SetPartitionSolution { selected, cost: objective, proven_optimal: true })
            }
            BnbResult::Infeasible | BnbResult::NodeLimit => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_agree_on_small_instances() {
        let mut p = SetPartitionProblem::new(4);
        p.add_set(vec![0, 1], 1.0);
        p.add_set(vec![2, 3], 1.0);
        p.add_set(vec![0, 1, 2, 3], 1.8);
        p.add_set(vec![0], 0.4);
        p.add_set(vec![1], 0.4);
        let dlx = p.solve(SolveEngine::Dlx).unwrap();
        let bnb = p.solve(SolveEngine::SimplexBnb).unwrap();
        assert!((dlx.cost - bnb.cost).abs() < 1e-9);
        assert!((dlx.cost - 1.8).abs() < 1e-9);
        assert!(dlx.proven_optimal);
    }
}
