//! Weighted set partitioning: the shared problem type for GECCO's Step 2.
//!
//! §V-C formalizes group selection as a MIP over a bipartite
//! candidate/class graph: minimize `Σ dist(gᵢ)·selected_{gᵢ}` subject to
//! every class being covered by exactly one selected candidate (Eqs. 3–4),
//! optionally bounding the number of selected groups (Eq. 5). Both solver
//! backends accept this type, so they can be cross-validated.

use crate::branch_bound::{solve_binary_program, BnbOptions, BnbResult};
use crate::dlx::{CoverOutcome, ExactCover, SolveParams};
use crate::model::{Model, Sense};
use crate::presolve::{presolve, PresolveOptions, PresolveOutcome};

/// Which backend solves the partitioning problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolveEngine {
    /// Dancing-links exact cover with cost-based branch-and-bound — the
    /// production engine.
    #[default]
    Dlx,
    /// Generic binary program via simplex-based branch-and-bound — the
    /// reference engine for cross-validation and ablation.
    SimplexBnb,
}

/// A weighted set-partitioning instance.
#[derive(Debug, Clone, Default)]
pub struct SetPartitionProblem {
    /// Number of elements that must each be covered exactly once.
    pub num_elements: usize,
    /// Candidate sets: `(member elements, cost)`.
    pub sets: Vec<(Vec<usize>, f64)>,
    /// Minimum number of selected sets (Eq. 5, `≥ y`).
    pub min_sets: Option<usize>,
    /// Maximum number of selected sets (Eq. 5, `≤ x`).
    pub max_sets: Option<usize>,
    /// Search budget (nodes); `0` means the default of 5 million.
    pub max_nodes: usize,
}

/// A solution to a [`SetPartitionProblem`].
#[derive(Debug, Clone, PartialEq)]
pub struct SetPartitionSolution {
    /// Indexes of selected sets (ascending).
    pub selected: Vec<usize>,
    /// Total cost of the selection.
    pub cost: f64,
    /// Whether optimality was proven (false when the node budget ran out).
    pub proven_optimal: bool,
}

impl SetPartitionProblem {
    /// Creates an instance over `num_elements` elements.
    pub fn new(num_elements: usize) -> Self {
        SetPartitionProblem { num_elements, ..Default::default() }
    }

    /// Adds a candidate set; returns its index. Members are normalized to
    /// sorted unique order — a set either covers an element or it does
    /// not, and the engines (the exact-cover links in particular) rely on
    /// each element appearing once per set.
    pub fn add_set(&mut self, mut members: Vec<usize>, cost: f64) -> usize {
        members.sort_unstable();
        members.dedup();
        self.sets.push((members, cost));
        self.sets.len() - 1
    }

    fn budget(&self) -> usize {
        if self.max_nodes == 0 {
            5_000_000
        } else {
            self.max_nodes
        }
    }

    /// Solves with the chosen engine; `None` means infeasible (or budget
    /// exhausted without any cover found).
    pub fn solve(&self, engine: SolveEngine) -> Option<SetPartitionSolution> {
        match engine {
            SolveEngine::Dlx => self.solve_dlx_with(None, None),
            SolveEngine::SimplexBnb => self.solve_bnb_with(None, None),
        }
    }

    /// Solves through the presolve → decompose → per-component pipeline:
    /// duplicate sets collapse to the cheapest, dominated sets and
    /// redundant elements disappear, elements covered by a single set are
    /// fixed, and the residual element/set graph splits into connected
    /// components solved independently (each with a greedy warm start and
    /// an LP/share lower bound). Cost-equivalent to [`Self::solve`], which
    /// stays as the un-presolved oracle for differential tests.
    pub fn solve_presolved(
        &self,
        engine: SolveEngine,
        options: &PresolveOptions,
    ) -> Option<SetPartitionSolution> {
        match presolve(self, options) {
            PresolveOutcome::Infeasible => None,
            PresolveOutcome::Solved(solution, _) => Some(solution),
            PresolveOutcome::Reduced(reduced) => reduced.solve(engine),
        }
    }

    /// The binary program of Eqs. 3–5 (set variables, exactly-one rows,
    /// optional cardinality rows); shared by the simplex engine and the
    /// presolve LP bound.
    pub(crate) fn binary_model(&self) -> Model {
        let mut model = Model::new();
        let vars: Vec<usize> = self.sets.iter().map(|(_, cost)| model.add_var(*cost)).collect();
        // Eq. 3/4 combined: each element covered by exactly one selected
        // set. Single pass over the sets building per-element term lists
        // (the sets already know their members; scanning every set per
        // element would be O(sets × elements)).
        let mut terms: Vec<Vec<(usize, f64)>> = vec![Vec::new(); self.num_elements];
        for (i, (members, _)) in self.sets.iter().enumerate() {
            for &element in members {
                terms[element].push((vars[i], 1.0));
            }
        }
        for element_terms in terms {
            model.add_constraint(element_terms, Sense::Eq, 1.0);
        }
        // Eq. 5: cardinality bounds.
        if let Some(max) = self.max_sets {
            model.add_constraint(vars.iter().map(|&v| (v, 1.0)).collect(), Sense::Le, max as f64);
        }
        if let Some(min) = self.min_sets {
            model.add_constraint(vars.iter().map(|&v| (v, 1.0)).collect(), Sense::Ge, min as f64);
        }
        model
    }

    pub(crate) fn solve_dlx_with(
        &self,
        warm_start: Option<(Vec<usize>, f64)>,
        lower_bound: Option<f64>,
    ) -> Option<SetPartitionSolution> {
        self.solve_dlx_outcome(warm_start, lower_bound).0
    }

    /// Like [`Self::solve_dlx_with`] but also reports whether the answer
    /// is *conclusive* — `(None, true)` is proven infeasibility while
    /// `(None, false)` means the node budget ran out undecided. The
    /// cardinality frontier DP in [`crate::presolve`] needs that
    /// distinction to keep its optimality proofs honest.
    pub(crate) fn solve_dlx_outcome(
        &self,
        warm_start: Option<(Vec<usize>, f64)>,
        lower_bound: Option<f64>,
    ) -> (Option<SetPartitionSolution>, bool) {
        let mut ec = ExactCover::new(self.num_elements);
        for (members, cost) in &self.sets {
            ec.add_row(members.clone(), *cost);
        }
        let params = SolveParams {
            min_rows: self.min_sets,
            max_rows: self.max_sets,
            max_nodes: self.budget(),
            warm_start,
            lower_bound,
        };
        match ec.solve_params(&params) {
            CoverOutcome::Optimal { mut rows, cost } => {
                rows.sort_unstable();
                (Some(SetPartitionSolution { selected: rows, cost, proven_optimal: true }), true)
            }
            CoverOutcome::Feasible { mut rows, cost } => {
                rows.sort_unstable();
                (Some(SetPartitionSolution { selected: rows, cost, proven_optimal: false }), false)
            }
            CoverOutcome::Infeasible => (None, true),
            CoverOutcome::Unknown => (None, false),
        }
    }

    pub(crate) fn solve_bnb_with(
        &self,
        warm_start: Option<(Vec<usize>, f64)>,
        lower_bound: Option<f64>,
    ) -> Option<SetPartitionSolution> {
        self.solve_bnb_outcome(warm_start, lower_bound).0
    }

    /// Outcome-reporting twin of [`Self::solve_bnb_with`]; see
    /// [`Self::solve_dlx_outcome`].
    pub(crate) fn solve_bnb_outcome(
        &self,
        warm_start: Option<(Vec<usize>, f64)>,
        lower_bound: Option<f64>,
    ) -> (Option<SetPartitionSolution>, bool) {
        let model = self.binary_model();
        // Translate a row-index warm start into a 0/1 assignment.
        let incumbent = warm_start.map(|(rows, cost)| {
            let mut values = vec![0.0; self.sets.len()];
            for &row in &rows {
                values[row] = 1.0;
            }
            (values, cost)
        });
        let options =
            BnbOptions { max_nodes: self.budget(), incumbent, lower_bound, ..Default::default() };
        match solve_binary_program(&model, options) {
            BnbResult::Optimal { values, objective } => {
                let selected: Vec<usize> =
                    (0..self.sets.len()).filter(|&i| values[i] > 0.5).collect();
                (
                    Some(SetPartitionSolution { selected, cost: objective, proven_optimal: true }),
                    true,
                )
            }
            BnbResult::Feasible { values, objective } => {
                let selected: Vec<usize> =
                    (0..self.sets.len()).filter(|&i| values[i] > 0.5).collect();
                (
                    Some(SetPartitionSolution { selected, cost: objective, proven_optimal: false }),
                    false,
                )
            }
            BnbResult::Infeasible => (None, true),
            BnbResult::NodeLimit => (None, false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two disjoint odd 3-cycles with singletons: both blocks have
    /// fractional LP relaxations, so the simplex engine must branch in
    /// both before finishing — the first incumbent appears well before
    /// the search tree is exhausted.
    fn double_odd_cycle() -> SetPartitionProblem {
        let mut p = SetPartitionProblem::new(6);
        for block in 0..2usize {
            let base = 3 * block;
            for (a, b) in [(0, 1), (1, 2), (0, 2)] {
                p.add_set(vec![base + a, base + b], 1.0);
            }
            for e in 0..3 {
                p.add_set(vec![base + e], 0.55 + 0.01 * (base + e) as f64);
            }
        }
        p
    }

    #[test]
    fn bnb_engine_returns_incumbent_on_node_budget() {
        // Regression: on node-budget exhaustion the DLX engine returns
        // its incumbent with `proven_optimal: false`, but the simplex
        // engine mapped `BnbResult::NodeLimit` to `None`, discarding its
        // incumbent. Both engines must degrade the same way.
        let mut p = double_odd_cycle();
        let optimum = p.solve(SolveEngine::SimplexBnb).unwrap();
        assert!(optimum.proven_optimal);
        let mut saw_incumbent = false;
        for budget in 1..=200 {
            p.max_nodes = budget;
            if let Some(s) = p.solve(SolveEngine::SimplexBnb) {
                if !s.proven_optimal {
                    // The budget ran out after an incumbent was found: it
                    // must be a valid cover, no worse than nothing.
                    let mut covered = vec![0u8; p.num_elements];
                    for &i in &s.selected {
                        for &m in &p.sets[i].0 {
                            covered[m] += 1;
                        }
                    }
                    assert!(covered.iter().all(|&c| c == 1));
                    assert!(s.cost >= optimum.cost - 1e-9);
                    saw_incumbent = true;
                    break;
                }
                assert!((s.cost - optimum.cost).abs() < 1e-9);
                break;
            }
        }
        assert!(saw_incumbent, "some budget must exhaust with an incumbent");
    }

    #[test]
    fn engines_agree_on_small_instances() {
        let mut p = SetPartitionProblem::new(4);
        p.add_set(vec![0, 1], 1.0);
        p.add_set(vec![2, 3], 1.0);
        p.add_set(vec![0, 1, 2, 3], 1.8);
        p.add_set(vec![0], 0.4);
        p.add_set(vec![1], 0.4);
        let dlx = p.solve(SolveEngine::Dlx).unwrap();
        let bnb = p.solve(SolveEngine::SimplexBnb).unwrap();
        assert!((dlx.cost - bnb.cost).abs() < 1e-9);
        assert!((dlx.cost - 1.8).abs() < 1e-9);
        assert!(dlx.proven_optimal);
    }
}
