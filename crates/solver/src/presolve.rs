//! Presolve and decomposition for weighted set partitioning.
//!
//! GECCO's Step-2 instances (§V-C) are highly redundant: candidate pools
//! contain duplicate groups, classes covered by a single candidate force
//! that candidate into every solution, and the candidate/class bipartite
//! graph usually splits into independent blocks. Presolving shrinks the
//! instance *before* the exponential search runs:
//!
//! 1. **Duplicate-set dedup** — sets with identical members collapse to
//!    the cheapest (lowest index on ties); only one of them can ever be
//!    selected, so keeping the rest only widens the search.
//! 2. **Mandatory-set fixing** — an element covered by exactly one set
//!    forces that set into the solution; its elements leave the universe
//!    and every other set touching them becomes unselectable. Runs to a
//!    fixpoint (fixing cascades).
//! 3. **Element dominance** — if every set covering element `a` also
//!    covers element `b` (`cover(a) ⊆ cover(b)`), the chosen set for `a`
//!    already covers `b`, so sets in `cover(b) \ cover(a)` can never be
//!    selected; once the covers coincide, `b`'s exactly-one row is
//!    implied by `a`'s and `b` leaves the universe.
//! 4. **Connected-component decomposition** — the residual element/set
//!    graph splits into connected components that share no elements;
//!    each solves independently and the solutions concatenate. When
//!    residual cardinality bounds couple the components, decomposition
//!    still applies through the **cardinality frontier DP**: every
//!    component is solved once per admissible set count `k` (its
//!    `(cost, k)` frontier) and a dynamic program picks one frontier
//!    entry per component so the total count lands inside the bounds at
//!    minimum cost. [`PresolveStats::decomposition`] records which of
//!    these paths ran — or why none did.
//!
//! Every reduction is exact: the reduced instance has the same optimal
//! cost as the original, and solutions map back through the recorded
//! fixings. Per component, a greedy warm-start incumbent and a lower
//! bound (the admissible per-element cost share, tightened by the LP
//! relaxation on large DLX components) are threaded into whichever
//! engine solves it, so the branch-and-bound prunes instead of
//! searching cold.

use crate::setpart::{SetPartitionProblem, SetPartitionSolution, SolveEngine};
use crate::simplex::{solve_lp_box, LpResult};
use std::collections::HashMap;

/// Which reductions run; all default to on.
#[derive(Debug, Clone)]
pub struct PresolveOptions {
    /// Collapse duplicate sets to the cheapest.
    pub dedup: bool,
    /// Remove dominated sets / redundant elements (reduction 3).
    pub dominance: bool,
    /// Fix sets that are the sole cover of some element.
    pub fix_mandatory: bool,
    /// Split the residual instance into connected components.
    pub decompose: bool,
    /// When residual cardinality bounds couple the components, still
    /// decompose and recombine per-component `(cost, #sets)` frontiers
    /// with a dynamic program (see [`ReducedProblem::frontier_tasks`]).
    /// `false` restores the pre-DP behavior: bounds force one monolithic
    /// solve, recorded as [`DecompositionStatus::BoundsWithoutDp`].
    pub cardinality_dp: bool,
    /// Seed each component with a greedy feasible cover.
    pub warm_start: bool,
    /// Tighten the lower bound of large DLX components with the LP
    /// relaxation. Only components whose set count lies in
    /// `lp_bound_min_sets..=lp_bound_max_sets` pay for the LP: the
    /// simplex engine solves that relaxation at its root anyway, small
    /// DLX searches outrun one dense LP, and the dense tableau grows
    /// quadratically past the ceiling.
    pub lp_bound: bool,
    /// Smallest DLX component (in sets) that computes the LP bound.
    pub lp_bound_min_sets: usize,
    /// Largest DLX component (in sets) that computes the LP bound.
    pub lp_bound_max_sets: usize,
}

impl PresolveOptions {
    /// The LP-bound size threshold: DLX components with **more** than this
    /// many sets compute the LP-relaxation lower bound before searching
    /// (`lp_bound_min_sets` defaults to this + 1). Below it, the
    /// dancing-links search with its built-in per-column share bound
    /// finishes faster than one dense LP solve; measured on the
    /// `bench_selection` instances the crossover sits near 256 sets.
    /// Selections must be identical on both sides of the threshold — the
    /// LP only tightens a lower bound, it never changes the optimum — and
    /// a regression test pins that.
    pub const LP_BOUND_SET_THRESHOLD: usize = 256;
    /// Default ceiling for the LP bound: the dense tableau grows
    /// quadratically, so past this many sets the LP costs more than the
    /// pruning it buys.
    pub const LP_BOUND_SET_CEILING: usize = 512;
}

impl Default for PresolveOptions {
    fn default() -> Self {
        PresolveOptions {
            dedup: true,
            dominance: true,
            fix_mandatory: true,
            decompose: true,
            cardinality_dp: true,
            warm_start: true,
            lp_bound: true,
            lp_bound_min_sets: Self::LP_BOUND_SET_THRESHOLD + 1,
            lp_bound_max_sets: Self::LP_BOUND_SET_CEILING,
        }
    }
}

/// How the residual instance was (or was not) decomposed — surfaced so
/// callers can see *why* a solve went monolithic instead of silently
/// paying for it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DecompositionStatus {
    /// Presolve solved or refuted the instance outright; no residual was
    /// left to decompose.
    #[default]
    NoResidual,
    /// The residual split into two or more independent components.
    Decomposed,
    /// Residual cardinality bounds couple the components; they were still
    /// split and recombined through the cardinality frontier DP.
    CoupledDp,
    /// The residual element/set graph is a single connected block.
    SingleComponent,
    /// [`PresolveOptions::decompose`] was off.
    DisabledByOptions,
    /// Residual cardinality bounds were present and
    /// [`PresolveOptions::cardinality_dp`] was off, so the residual was
    /// solved as one block.
    BoundsWithoutDp,
}

/// What presolve removed, for logging and benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PresolveStats {
    /// Sets fixed into the solution (sole cover of some element).
    pub fixed_sets: usize,
    /// Duplicate sets collapsed onto a cheaper twin.
    pub removed_duplicates: usize,
    /// Sets removed by element dominance.
    pub removed_dominated: usize,
    /// Elements whose exactly-one row became redundant.
    pub merged_elements: usize,
    /// Connected components of the residual instance (0 when solved or
    /// infeasible outright).
    pub components: usize,
    /// How (or why not) the residual decomposed.
    pub decomposition: DecompositionStatus,
}

/// Outcome of presolving an instance.
#[derive(Debug)]
pub enum PresolveOutcome<'a> {
    /// Presolve proved that no exact cover satisfies the bounds.
    Infeasible,
    /// Presolve solved the instance outright (everything was forced).
    Solved(SetPartitionSolution, PresolveStats),
    /// A reduced instance remains; solve its components and assemble.
    Reduced(ReducedProblem<'a>),
}

/// One independent block of the reduced instance: a dense local
/// subproblem plus the mapping back to original set indices.
#[derive(Debug)]
pub struct Component {
    problem: SetPartitionProblem,
    set_map: Vec<usize>,
}

impl Component {
    /// The local subproblem (dense element ids, local set indices).
    pub fn problem(&self) -> &SetPartitionProblem {
        &self.problem
    }

    /// Maps a local set index back to the original instance.
    pub fn original_set(&self, local: usize) -> usize {
        self.set_map[local]
    }
}

/// The reduced instance: forced sets plus independent components.
///
/// Components are ordered by their smallest element id and are fully
/// independent, so callers may solve them in any order — or in parallel —
/// and [`ReducedProblem::assemble`] the per-component solutions; the
/// result is identical either way.
#[derive(Debug)]
pub struct ReducedProblem<'a> {
    problem: &'a SetPartitionProblem,
    options: PresolveOptions,
    stats: PresolveStats,
    /// Sets forced into every solution (ascending original indices).
    fixed: Vec<usize>,
    components: Vec<Component>,
    /// Residual cardinality bounds after the forced selections. `None`
    /// entries mean unbounded; when [`Self::is_coupled`] the component
    /// problems carry no local bounds and these drive the frontier DP.
    residual_min: Option<usize>,
    residual_max: Option<usize>,
    /// Per-component admissible `#sets` ranges `(lo, hi)`; nonempty only
    /// when coupled.
    ranges: Vec<(usize, usize)>,
}

/// One entry of a component's cardinality frontier: the outcome of
/// solving the component with exactly `k` selected sets.
#[derive(Debug, Clone)]
pub enum FrontierOutcome {
    /// The optimal cover with exactly that many sets (original indices).
    Solution(SetPartitionSolution),
    /// No cover with exactly that many sets exists.
    Infeasible,
    /// The node budget ran out undecided; an unproven incumbent may be
    /// carried along (it keeps the assembly feasible but the assembled
    /// solution loses its optimality proof).
    Exhausted(Option<SetPartitionSolution>),
}

impl ReducedProblem<'_> {
    /// The independent subproblems.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Sets presolve forced into every solution.
    pub fn fixed_sets(&self) -> &[usize] {
        &self.fixed
    }

    /// What presolve removed.
    pub fn stats(&self) -> PresolveStats {
        self.stats
    }

    /// Whether residual cardinality bounds couple the components, i.e.
    /// solving goes through [`Self::frontier_tasks`] /
    /// [`Self::assemble_frontier`] instead of
    /// [`Self::solve_component`] / [`Self::assemble`].
    pub fn is_coupled(&self) -> bool {
        !self.ranges.is_empty()
    }

    /// Solves component `idx` with `engine`, seeded with a greedy warm
    /// start and a share/LP lower bound (per [`PresolveOptions`]).
    /// Returns the selected sets as **original** indices, or `None` if
    /// the component is infeasible.
    pub fn solve_component(&self, idx: usize, engine: SolveEngine) -> Option<SetPartitionSolution> {
        let component = &self.components[idx];
        let problem = &component.problem;
        let warm_start = if self.options.warm_start { greedy_cover(problem) } else { None };
        let mut lower_bound = share_bound(problem);
        // An external LP bound only pays off for *large DLX* components:
        // the simplex engine solves the identical root relaxation itself
        // (and prunes against the warm-start incumbent there), and on
        // small DLX components the dancing-links search with its built-in
        // per-column share bound finishes faster than one dense LP.
        let want_lp = self.options.lp_bound
            && matches!(engine, SolveEngine::Dlx)
            && problem.sets.len() >= self.options.lp_bound_min_sets
            && problem.sets.len() <= self.options.lp_bound_max_sets;
        if want_lp {
            match solve_lp_box(&problem.binary_model()) {
                LpResult::Optimal(lp) => lower_bound = lower_bound.max(lp.objective),
                // The LP relaxation is infeasible, so the component is.
                LpResult::Infeasible => return None,
                LpResult::Unbounded => {}
            }
        }
        let local = match engine {
            SolveEngine::Dlx => problem.solve_dlx_with(warm_start, Some(lower_bound)),
            SolveEngine::SimplexBnb => problem.solve_bnb_with(warm_start, Some(lower_bound)),
        }?;
        let mut selected: Vec<usize> =
            local.selected.iter().map(|&i| component.set_map[i]).collect();
        selected.sort_unstable();
        Some(SetPartitionSolution {
            selected,
            cost: local.cost,
            proven_optimal: local.proven_optimal,
        })
    }

    /// Concatenates per-component solutions (in component order, as
    /// produced by [`ReducedProblem::solve_component`]) with the fixed
    /// sets into a solution of the original instance. `None` if any
    /// component was infeasible. The cost is recomputed canonically —
    /// original costs summed in ascending set order — so serial and
    /// parallel component solves assemble bit-identical results.
    pub fn assemble(
        &self,
        solutions: impl IntoIterator<Item = Option<SetPartitionSolution>>,
    ) -> Option<SetPartitionSolution> {
        let mut selected = self.fixed.clone();
        let mut proven_optimal = true;
        for solution in solutions {
            let solution = solution?;
            proven_optimal &= solution.proven_optimal;
            selected.extend(solution.selected);
        }
        selected.sort_unstable();
        let cost = selected.iter().map(|&i| self.problem.sets[i].1).sum();
        Some(SetPartitionSolution { selected, cost, proven_optimal })
    }

    /// Solves every component serially and assembles the result.
    pub fn solve(&self, engine: SolveEngine) -> Option<SetPartitionSolution> {
        if self.is_coupled() {
            let tasks = self.frontier_tasks();
            let outcomes: Vec<FrontierOutcome> =
                tasks.iter().map(|&(c, k)| self.solve_frontier_task(c, k, engine)).collect();
            return self.assemble_frontier(outcomes);
        }
        let solutions: Vec<Option<SetPartitionSolution>> =
            (0..self.components.len()).map(|i| self.solve_component(i, engine)).collect();
        self.assemble(solutions)
    }

    /// The `(component, k)` pairs the cardinality frontier DP needs, in a
    /// fixed order. The tasks are fully independent — callers may solve
    /// them in any order or in parallel and feed the outcomes back to
    /// [`Self::assemble_frontier`] *in this order*; the assembled result
    /// is identical either way. Empty unless [`Self::is_coupled`].
    pub fn frontier_tasks(&self) -> Vec<(usize, usize)> {
        self.ranges
            .iter()
            .enumerate()
            .flat_map(|(c, &(lo, hi))| (lo..=hi).map(move |k| (c, k)))
            .collect()
    }

    /// Solves component `idx` with exactly `k` selected sets (one
    /// frontier entry), seeded with a greedy warm start (when it happens
    /// to hit `k`) and the share lower bound.
    pub fn solve_frontier_task(
        &self,
        idx: usize,
        k: usize,
        engine: SolveEngine,
    ) -> FrontierOutcome {
        let component = &self.components[idx];
        let mut problem = component.problem.clone();
        problem.min_sets = Some(k);
        problem.max_sets = Some(k);
        let warm_start = if self.options.warm_start { greedy_cover(&problem) } else { None };
        let lower_bound = Some(share_bound(&problem));
        let (local, conclusive) = match engine {
            SolveEngine::Dlx => problem.solve_dlx_outcome(warm_start, lower_bound),
            SolveEngine::SimplexBnb => problem.solve_bnb_outcome(warm_start, lower_bound),
        };
        let mapped = local.map(|local| {
            let mut selected: Vec<usize> =
                local.selected.iter().map(|&i| component.set_map[i]).collect();
            selected.sort_unstable();
            SetPartitionSolution {
                selected,
                cost: local.cost,
                proven_optimal: local.proven_optimal,
            }
        });
        match (mapped, conclusive) {
            (Some(solution), true) => FrontierOutcome::Solution(solution),
            (None, true) => FrontierOutcome::Infeasible,
            (incumbent, false) => FrontierOutcome::Exhausted(incumbent),
        }
    }

    /// Combines per-component cardinality frontiers into the cheapest
    /// selection whose total set count satisfies the residual bounds.
    /// `outcomes` must match [`Self::frontier_tasks`] order. `None` when
    /// no admissible combination exists. The DP is deterministic (strict
    /// improvement, smallest total on cost ties), so serial and parallel
    /// task solves assemble bit-identical results.
    pub fn assemble_frontier(
        &self,
        outcomes: impl IntoIterator<Item = FrontierOutcome>,
    ) -> Option<SetPartitionSolution> {
        // Regroup the flat task list into per-component frontiers.
        let mut frontiers: Vec<Vec<(usize, SetPartitionSolution)>> =
            vec![Vec::new(); self.components.len()];
        let mut exhausted = false;
        for (&(c, k), outcome) in self.frontier_tasks().iter().zip(outcomes) {
            match outcome {
                FrontierOutcome::Solution(s) => frontiers[c].push((k, s)),
                FrontierOutcome::Infeasible => {}
                FrontierOutcome::Exhausted(incumbent) => {
                    exhausted = true;
                    if let Some(s) = incumbent {
                        frontiers[c].push((k, s));
                    }
                }
            }
        }
        if frontiers.iter().any(Vec::is_empty) {
            return None;
        }
        let cap = self.residual_max.unwrap_or_else(|| self.ranges.iter().map(|&(_, hi)| hi).sum());
        // dp[t] = min cost with exactly `t` sets over the components seen
        // so far; `choice[c][t]` records which frontier entry of
        // component `c` achieved it.
        let mut dp = vec![f64::INFINITY; cap + 1];
        dp[0] = 0.0;
        let mut choice: Vec<Vec<Option<usize>>> = Vec::with_capacity(self.components.len());
        for frontier in &frontiers {
            let mut next = vec![f64::INFINITY; cap + 1];
            let mut chosen = vec![None; cap + 1];
            for (t, &base) in dp.iter().enumerate() {
                if !base.is_finite() {
                    continue;
                }
                for (entry, (k, solution)) in frontier.iter().enumerate() {
                    let total = t + k;
                    if total > cap {
                        continue;
                    }
                    let cost = base + solution.cost;
                    if cost < next[total] {
                        next[total] = cost;
                        chosen[total] = Some(entry);
                    }
                }
            }
            dp = next;
            choice.push(chosen);
        }
        let lo = self.residual_min.unwrap_or(0);
        let best_total = (lo..=cap)
            .filter(|&t| dp[t].is_finite())
            .min_by(|&a, &b| dp[a].total_cmp(&dp[b]).then(a.cmp(&b)))?;
        // Walk the choices backwards to collect the selection.
        let mut selected = self.fixed.clone();
        let mut proven_optimal = !exhausted;
        let mut total = best_total;
        for (c, frontier) in frontiers.iter().enumerate().rev() {
            let entry = choice[c][total].expect("dp reached this total through component c");
            let (k, solution) = &frontier[entry];
            proven_optimal &= solution.proven_optimal;
            selected.extend_from_slice(&solution.selected);
            total -= k;
        }
        debug_assert_eq!(total, 0);
        selected.sort_unstable();
        let cost = selected.iter().map(|&i| self.problem.sets[i].1).sum();
        Some(SetPartitionSolution { selected, cost, proven_optimal })
    }
}

/// Admissible lower bound: every element costs at least the cheapest
/// per-element share `cost/|set|` among the sets covering it.
fn share_bound(problem: &SetPartitionProblem) -> f64 {
    let mut min_share = vec![f64::INFINITY; problem.num_elements];
    for (members, cost) in &problem.sets {
        let share = cost / members.len() as f64;
        for &element in members {
            if share < min_share[element] {
                min_share[element] = share;
            }
        }
    }
    min_share.iter().sum()
}

/// Greedy feasible cover: take sets by ascending cost share, skipping any
/// that overlap what is already covered. `None` when the greedy pass does
/// not reach a full cover within the cardinality bounds.
fn greedy_cover(problem: &SetPartitionProblem) -> Option<(Vec<usize>, f64)> {
    let mut order: Vec<usize> = (0..problem.sets.len()).collect();
    order.sort_by(|&a, &b| {
        let share_a = problem.sets[a].1 / problem.sets[a].0.len() as f64;
        let share_b = problem.sets[b].1 / problem.sets[b].0.len() as f64;
        share_a.total_cmp(&share_b).then(a.cmp(&b))
    });
    let mut covered = vec![false; problem.num_elements];
    let mut remaining = problem.num_elements;
    let mut chosen = Vec::new();
    for set in order {
        let members = &problem.sets[set].0;
        if members.iter().any(|&m| covered[m]) {
            continue;
        }
        for &m in members {
            covered[m] = true;
        }
        remaining -= members.len();
        chosen.push(set);
        if remaining == 0 {
            break;
        }
    }
    if remaining != 0 {
        return None;
    }
    if problem.min_sets.is_some_and(|min| chosen.len() < min)
        || problem.max_sets.is_some_and(|max| chosen.len() > max)
    {
        return None;
    }
    chosen.sort_unstable();
    let cost = chosen.iter().map(|&i| problem.sets[i].1).sum();
    Some((chosen, cost))
}

/// Working state of the reduction fixpoint.
struct Reducer<'a> {
    problem: &'a SetPartitionProblem,
    /// Member lists filtered to alive elements (shrink as elements merge).
    members: Vec<Vec<usize>>,
    alive_set: Vec<bool>,
    alive_elem: Vec<bool>,
    fixed: Vec<usize>,
    stats: PresolveStats,
}

impl<'a> Reducer<'a> {
    fn new(problem: &'a SetPartitionProblem) -> Reducer<'a> {
        let members: Vec<Vec<usize>> = problem
            .sets
            .iter()
            .map(|(m, _)| {
                let mut m = m.clone();
                m.sort_unstable();
                m.dedup();
                debug_assert!(m.iter().all(|&e| e < problem.num_elements));
                m
            })
            .collect();
        let alive_set: Vec<bool> = members.iter().map(|m| !m.is_empty()).collect();
        Reducer {
            problem,
            members,
            alive_set,
            alive_elem: vec![true; problem.num_elements],
            fixed: Vec::new(),
            stats: PresolveStats::default(),
        }
    }

    /// Sorted list of alive sets covering each element (empty for dead
    /// elements).
    fn covers(&self) -> Vec<Vec<usize>> {
        let mut covers = vec![Vec::new(); self.problem.num_elements];
        for (set, members) in self.members.iter().enumerate() {
            if !self.alive_set[set] {
                continue;
            }
            for &element in members {
                covers[element].push(set);
            }
        }
        covers
    }

    /// Fixes `set` into the solution: its elements leave the universe and
    /// every other set touching them dies.
    fn fix(&mut self, set: usize) {
        self.fixed.push(set);
        self.stats.fixed_sets += 1;
        let elements = std::mem::take(&mut self.members[set]);
        self.alive_set[set] = false;
        for &e in &elements {
            self.alive_elem[e] = false;
        }
        // Alive sets only contain alive elements (the invariant every
        // reduction maintains), so a member that just died pinpoints an
        // overlap with the fixed set — no per-member containment scan.
        for (other, members) in self.members.iter().enumerate() {
            if self.alive_set[other] && members.iter().any(|&m| !self.alive_elem[m]) {
                self.alive_set[other] = false;
            }
        }
    }

    /// One pass of mandatory fixing; `Err(())` on a newly uncoverable
    /// element, `Ok(changed)` otherwise. Each `covers()` rebuild fixes
    /// *every* currently forced element (skipping ones a previous fix in
    /// the batch already covered or orphaned), so a cascade of `F`
    /// fixings costs a handful of rebuilds, not `F` of them.
    fn fix_mandatory_pass(&mut self) -> Result<bool, ()> {
        let mut changed = false;
        loop {
            let covers = self.covers();
            let mut batch_fixed = false;
            for (element, cover) in covers.iter().enumerate() {
                if !self.alive_elem[element] {
                    continue;
                }
                match cover.len() {
                    0 => return Err(()),
                    1 => {
                        let set = cover[0];
                        if !self.alive_set[set] {
                            // Its sole cover died earlier in this batch:
                            // uncoverable.
                            return Err(());
                        }
                        self.fix(set);
                        batch_fixed = true;
                        changed = true;
                    }
                    _ => {}
                }
            }
            if !batch_fixed {
                return Ok(changed);
            }
        }
    }

    /// Collapses duplicate member lists onto the cheapest set.
    fn dedup_pass(&mut self) -> bool {
        let mut best: HashMap<&[usize], usize> = HashMap::new();
        let mut losers = Vec::new();
        for (set, members) in self.members.iter().enumerate() {
            if !self.alive_set[set] {
                continue;
            }
            match best.entry(members.as_slice()) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(set);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let held = *e.get();
                    // Strictly cheaper wins; ties keep the lower index
                    // (the held one, since we scan ascending).
                    if self.problem.sets[set].1 < self.problem.sets[held].1 - 1e-12 {
                        losers.push(held);
                        e.insert(set);
                    } else {
                        losers.push(set);
                    }
                }
            }
        }
        let changed = !losers.is_empty();
        for set in losers {
            self.alive_set[set] = false;
            self.stats.removed_duplicates += 1;
        }
        changed
    }

    /// One pass of element dominance; returns whether anything changed.
    fn dominance_pass(&mut self) -> bool {
        let covers = self.covers();
        let alive: Vec<usize> =
            (0..self.problem.num_elements).filter(|&e| self.alive_elem[e]).collect();
        let mut changed = false;
        for (i, &a) in alive.iter().enumerate() {
            if !self.alive_elem[a] || covers[a].is_empty() {
                continue;
            }
            for &b in &alive[i + 1..] {
                if !self.alive_elem[a] || !self.alive_elem[b] {
                    continue;
                }
                // Orient so `small`'s cover is the (candidate) subset.
                let (small, large) =
                    if covers[a].len() <= covers[b].len() { (a, b) } else { (b, a) };
                if covers[small].is_empty() || !is_subset(&covers[small], &covers[large]) {
                    continue;
                }
                // Sets covering `large` but not `small` can never be
                // selected; after removing them the covers coincide and
                // `large`'s row is redundant.
                for &set in &covers[large] {
                    if self.alive_set[set] && covers[small].binary_search(&set).is_err() {
                        self.alive_set[set] = false;
                        self.stats.removed_dominated += 1;
                    }
                }
                self.alive_elem[large] = false;
                self.stats.merged_elements += 1;
                for &set in &covers[small] {
                    if self.alive_set[set] {
                        self.members[set].retain(|&e| e != large);
                    }
                }
                changed = true;
            }
        }
        changed
    }
}

fn is_subset(small: &[usize], large: &[usize]) -> bool {
    let mut it = large.iter();
    'outer: for s in small {
        for l in it.by_ref() {
            match l.cmp(s) {
                std::cmp::Ordering::Less => {}
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// Presolves `problem`: applies the reductions of the module docs to a
/// fixpoint, then decomposes the residual into connected components.
pub fn presolve<'a>(
    problem: &'a SetPartitionProblem,
    options: &PresolveOptions,
) -> PresolveOutcome<'a> {
    let mut reducer = Reducer::new(problem);
    loop {
        let mut changed = false;
        if options.fix_mandatory {
            match reducer.fix_mandatory_pass() {
                Ok(c) => changed |= c,
                Err(()) => return PresolveOutcome::Infeasible,
            }
        } else if reducer
            .covers()
            .iter()
            .enumerate()
            .any(|(e, cover)| reducer.alive_elem[e] && cover.is_empty())
        {
            // Even without fixing, an uncoverable element is conclusive.
            return PresolveOutcome::Infeasible;
        }
        if options.dedup {
            changed |= reducer.dedup_pass();
        }
        if options.dominance {
            changed |= reducer.dominance_pass();
        }
        if !changed {
            break;
        }
    }

    let mut stats = reducer.stats;
    let fixed_count = reducer.fixed.len();
    // Residual cardinality bounds after the forced selections.
    if problem.max_sets.is_some_and(|max| fixed_count > max) {
        return PresolveOutcome::Infeasible;
    }
    let residual_min = problem.min_sets.map(|min| min.saturating_sub(fixed_count));
    let residual_max = problem.max_sets.map(|max| max - fixed_count);
    let mut fixed = std::mem::take(&mut reducer.fixed);
    fixed.sort_unstable();

    let alive_elements: Vec<usize> =
        (0..problem.num_elements).filter(|&e| reducer.alive_elem[e]).collect();
    if alive_elements.is_empty() {
        // Everything was forced: no sets remain selectable (any survivor
        // would overlap a fixed set), so the minimum bound must already
        // hold (the maximum was checked against the fixed count above).
        if residual_min.unwrap_or(0) > 0 {
            return PresolveOutcome::Infeasible;
        }
        let cost = fixed.iter().map(|&i| problem.sets[i].1).sum();
        return PresolveOutcome::Solved(
            SetPartitionSolution { selected: fixed, cost, proven_optimal: true },
            stats,
        );
    }

    // A maximum at or above the residual element count can never bind
    // (selected sets are disjoint and nonempty), so only a real minimum
    // or a binding maximum couples the components.
    let binding_max = residual_max.filter(|&max| max < alive_elements.len());
    let bounded = residual_min.unwrap_or(0) > 0 || binding_max.is_some();
    let coupled = bounded && options.decompose && options.cardinality_dp;
    let element_groups: Vec<Vec<usize>> = if options.decompose && (!bounded || coupled) {
        connected_components(&reducer, &alive_elements)
    } else {
        vec![alive_elements]
    };
    // The frontier DP only earns its keep with ≥ 2 components; a single
    // block solves directly with the bounds attached.
    let coupled = coupled && element_groups.len() > 1;
    stats.decomposition = if bounded && coupled {
        DecompositionStatus::CoupledDp
    } else if bounded && !options.decompose {
        DecompositionStatus::DisabledByOptions
    } else if bounded && !options.cardinality_dp {
        DecompositionStatus::BoundsWithoutDp
    } else if !options.decompose {
        DecompositionStatus::DisabledByOptions
    } else if element_groups.len() > 1 {
        DecompositionStatus::Decomposed
    } else {
        DecompositionStatus::SingleComponent
    };

    let mut components = Vec::with_capacity(element_groups.len());
    for elements in element_groups {
        let mut local_id = HashMap::with_capacity(elements.len());
        for (local, &element) in elements.iter().enumerate() {
            local_id.insert(element, local);
        }
        let mut local = SetPartitionProblem::new(elements.len());
        if !coupled {
            local.min_sets = residual_min.filter(|&m| m > 0);
            local.max_sets = residual_max;
        }
        local.max_nodes = problem.max_nodes;
        let mut set_map = Vec::new();
        for (set, members) in reducer.members.iter().enumerate() {
            if !reducer.alive_set[set] || !local_id.contains_key(&members[0]) {
                continue;
            }
            let local_members: Vec<usize> = members.iter().map(|m| local_id[m]).collect();
            local.add_set(local_members, problem.sets[set].1);
            set_map.push(set);
        }
        components.push(Component { problem: local, set_map });
    }
    stats.components = components.len();
    let ranges = if coupled {
        match frontier_ranges(&components, residual_min, residual_max) {
            Some(ranges) => ranges,
            // The k-ranges cannot meet the bounds no matter the costs.
            None => return PresolveOutcome::Infeasible,
        }
    } else {
        Vec::new()
    };
    PresolveOutcome::Reduced(ReducedProblem {
        problem,
        options: options.clone(),
        stats,
        fixed,
        components,
        residual_min: residual_min.filter(|&m| m > 0),
        residual_max,
        ranges,
    })
}

/// Per-component admissible set-count ranges `(lo, hi)` under the global
/// residual bounds: `lo` from the pigeonhole bound `⌈|elements| / max set
/// size⌉`, `hi` from the element count, both tightened to a fixpoint
/// against what the *other* components must at least / can at most
/// contribute. `None` when some range empties — the coupled instance is
/// infeasible regardless of costs.
fn frontier_ranges(
    components: &[Component],
    residual_min: Option<usize>,
    residual_max: Option<usize>,
) -> Option<Vec<(usize, usize)>> {
    let mut ranges: Vec<(usize, usize)> = components
        .iter()
        .map(|c| {
            let elements = c.problem.num_elements;
            let largest = c.problem.sets.iter().map(|(m, _)| m.len()).max().unwrap_or(1);
            (elements.div_ceil(largest), elements)
        })
        .collect();
    loop {
        let lo_sum: usize = ranges.iter().map(|&(lo, _)| lo).sum();
        let hi_sum: usize = ranges.iter().map(|&(_, hi)| hi).sum();
        let mut changed = false;
        for range in &mut ranges {
            let (lo, hi) = *range;
            if let Some(max) = residual_max {
                // The others need at least `lo_sum - lo` sets.
                let budget = max.checked_sub(lo_sum - lo)?;
                if budget < hi {
                    range.1 = budget;
                    changed = true;
                }
            }
            if let Some(min) = residual_min {
                // The others can contribute at most `hi_sum - hi` sets.
                let need = min.saturating_sub(hi_sum - hi);
                if need > lo {
                    range.0 = need;
                    changed = true;
                }
            }
            if range.0 > range.1 {
                return None;
            }
        }
        if !changed {
            return Some(ranges);
        }
    }
}

/// Groups alive elements into connected components of the element/set
/// graph (union-find), ordered by smallest element id.
fn connected_components(reducer: &Reducer<'_>, alive_elements: &[usize]) -> Vec<Vec<usize>> {
    let n = reducer.problem.num_elements;
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for (set, members) in reducer.members.iter().enumerate() {
        if !reducer.alive_set[set] {
            continue;
        }
        let root = find(&mut parent, members[0]);
        for &m in &members[1..] {
            let r = find(&mut parent, m);
            parent[r] = root;
        }
    }
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut group_of_root: HashMap<usize, usize> = HashMap::new();
    for &element in alive_elements {
        let root = find(&mut parent, element);
        match group_of_root.entry(root) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(groups.len());
                groups.push(vec![element]);
            }
            std::collections::hash_map::Entry::Occupied(e) => groups[*e.get()].push(element),
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem(n: usize, sets: &[(&[usize], f64)]) -> SetPartitionProblem {
        let mut p = SetPartitionProblem::new(n);
        for (members, cost) in sets {
            p.add_set(members.to_vec(), *cost);
        }
        p
    }

    fn reduced<'a>(p: &'a SetPartitionProblem, options: &PresolveOptions) -> ReducedProblem<'a> {
        match presolve(p, options) {
            PresolveOutcome::Reduced(r) => r,
            other => panic!("expected Reduced, got {other:?}"),
        }
    }

    #[test]
    fn duplicates_collapse_to_the_cheapest() {
        let p =
            problem(2, &[(&[0, 1], 3.0), (&[0, 1], 1.0), (&[0, 1], 2.0), (&[0], 0.4), (&[1], 0.4)]);
        let r = reduced(&p, &PresolveOptions::default());
        assert_eq!(r.stats().removed_duplicates, 2);
        let s = r.solve(SolveEngine::Dlx).unwrap();
        assert_eq!(s.selected, vec![3, 4]);
        assert!((s.cost - 0.8).abs() < 1e-12);
        // Flip the pricing: the kept duplicate is the 1.0 one.
        let p = problem(2, &[(&[0, 1], 3.0), (&[0, 1], 1.0), (&[0], 0.9), (&[1], 0.9)]);
        let s = p.solve_presolved(SolveEngine::Dlx, &PresolveOptions::default()).unwrap();
        assert_eq!(s.selected, vec![1]);
        assert!((s.cost - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mandatory_fixing_cascades() {
        // Element 0 only covered by {0,1}; fixing it kills {1,2}, which
        // makes {2} mandatory for element 2.
        let p = problem(3, &[(&[0, 1], 1.0), (&[1, 2], 1.0), (&[2], 0.5)]);
        match presolve(&p, &PresolveOptions::default()) {
            PresolveOutcome::Solved(s, stats) => {
                assert_eq!(s.selected, vec![0, 2]);
                assert!((s.cost - 1.5).abs() < 1e-12);
                assert!(s.proven_optimal);
                assert_eq!(stats.decomposition, DecompositionStatus::NoResidual);
            }
            other => panic!("expected Solved, got {other:?}"),
        }
    }

    #[test]
    fn fixing_detects_conflicts() {
        // Both pairs are mandatory (sole covers of elements 0 and 2) but
        // overlap on element 1.
        let p = problem(3, &[(&[0, 1], 1.0), (&[1, 2], 1.0)]);
        assert!(matches!(presolve(&p, &PresolveOptions::default()), PresolveOutcome::Infeasible));
        assert!(p.solve(SolveEngine::Dlx).is_none(), "oracle agrees");
    }

    #[test]
    fn uncoverable_element_is_infeasible() {
        let p = problem(2, &[(&[0], 1.0)]);
        assert!(matches!(presolve(&p, &PresolveOptions::default()), PresolveOutcome::Infeasible));
    }

    #[test]
    fn dominance_removes_double_cover_sets() {
        // cover(0) = {s0, s1} ⊂ cover(1) = {s0, s1, s2}: s2 = {1} can
        // never be selected (element 1 is always covered via element 0's
        // set), and element 1's row becomes redundant.
        let p = problem(3, &[(&[0, 1], 1.0), (&[0, 1, 2], 1.4), (&[1], 0.2), (&[2], 0.3)]);
        let opts = PresolveOptions { fix_mandatory: false, ..Default::default() };
        let r = reduced(&p, &opts);
        assert!(r.stats().removed_dominated >= 1);
        assert!(r.stats().merged_elements >= 1);
        let s = r.solve(SolveEngine::Dlx).unwrap();
        let oracle = p.solve(SolveEngine::Dlx).unwrap();
        assert!((s.cost - oracle.cost).abs() < 1e-9);
        assert_eq!(s.selected, vec![0, 3]);
    }

    #[test]
    fn components_split_and_concatenate() {
        // Two independent blocks: {0,1} and {2,3}.
        let p = problem(
            4,
            &[(&[0, 1], 1.0), (&[0], 0.7), (&[1], 0.7), (&[2, 3], 2.0), (&[2], 0.6), (&[3], 0.6)],
        );
        let opts = PresolveOptions { fix_mandatory: false, dominance: false, ..Default::default() };
        let r = reduced(&p, &opts);
        assert_eq!(r.components().len(), 2);
        assert_eq!(r.stats().components, 2);
        let s = r.solve(SolveEngine::Dlx).unwrap();
        assert_eq!(s.selected, vec![0, 4, 5]);
        assert!((s.cost - 2.2).abs() < 1e-12);
        assert!(s.proven_optimal);
        // Component solutions assemble in any order the caller produces
        // them (they arrive indexed, so order is the component order).
        let sols: Vec<_> = (0..2).map(|i| r.solve_component(i, SolveEngine::SimplexBnb)).collect();
        let s2 = r.assemble(sols).unwrap();
        assert_eq!(s2.selected, s.selected);
        assert!((s2.cost - s.cost).abs() < 1e-12);
    }

    #[test]
    fn cardinality_bounds_decompose_through_the_frontier_dp() {
        let mut p = problem(
            4,
            &[(&[0, 1], 1.0), (&[0], 0.7), (&[1], 0.7), (&[2, 3], 2.0), (&[2], 0.6), (&[3], 0.6)],
        );
        p.max_sets = Some(2);
        let opts = PresolveOptions { fix_mandatory: false, dominance: false, ..Default::default() };
        let r = reduced(&p, &opts);
        assert_eq!(r.components().len(), 2, "the DP keeps the blocks separate");
        assert!(r.is_coupled());
        assert_eq!(r.stats().decomposition, DecompositionStatus::CoupledDp);
        let s = r.solve(SolveEngine::Dlx).unwrap();
        let oracle = p.solve(SolveEngine::Dlx).unwrap();
        assert_eq!(s.selected, vec![0, 3]);
        assert!((s.cost - oracle.cost).abs() < 1e-9);
        assert!(s.proven_optimal);
    }

    #[test]
    fn cardinality_dp_opt_out_solves_monolithically() {
        // With the frontier DP disabled, bounds fall back to the old
        // behavior: one coupled block carrying the residual bounds.
        let mut p = problem(
            4,
            &[(&[0, 1], 1.0), (&[0], 0.7), (&[1], 0.7), (&[2, 3], 2.0), (&[2], 0.6), (&[3], 0.6)],
        );
        p.max_sets = Some(2);
        let opts = PresolveOptions {
            fix_mandatory: false,
            dominance: false,
            cardinality_dp: false,
            ..Default::default()
        };
        let r = reduced(&p, &opts);
        assert_eq!(r.components().len(), 1, "bounds couple the blocks");
        assert!(!r.is_coupled());
        assert_eq!(r.stats().decomposition, DecompositionStatus::BoundsWithoutDp);
        let s = r.solve(SolveEngine::Dlx).unwrap();
        let oracle = p.solve(SolveEngine::Dlx).unwrap();
        assert_eq!(s.selected, vec![0, 3]);
        assert!((s.cost - oracle.cost).abs() < 1e-9);
    }

    #[test]
    fn min_bounds_decompose_through_the_frontier_dp() {
        // A minimum forces the expensive singletons in the cheapest way
        // across both blocks; the DP must pick the global split (1 + 2 or
        // 2 + 1), not a per-component guess.
        let mut p = problem(
            4,
            &[(&[0, 1], 1.0), (&[0], 0.7), (&[1], 0.8), (&[2, 3], 1.0), (&[2], 0.6), (&[3], 0.85)],
        );
        p.min_sets = Some(3);
        let opts = PresolveOptions { fix_mandatory: false, dominance: false, ..Default::default() };
        let r = reduced(&p, &opts);
        assert!(r.is_coupled());
        for engine in [SolveEngine::Dlx, SolveEngine::SimplexBnb] {
            let s = r.solve(engine).unwrap();
            let oracle = p.solve(engine).unwrap();
            assert!((s.cost - oracle.cost).abs() < 1e-9, "{engine:?}");
            assert_eq!(s.selected, oracle.selected, "{engine:?}");
            assert!(s.proven_optimal);
        }
    }

    #[test]
    fn frontier_dp_detects_infeasible_ranges() {
        // Two blocks of two elements each with only singleton covers:
        // any cover needs 4 sets, but max_sets = 3.
        let mut p = problem(4, &[(&[0], 0.5), (&[1], 0.5), (&[2], 0.5), (&[3], 0.5)]);
        p.max_sets = Some(3);
        let opts = PresolveOptions { fix_mandatory: false, dominance: false, ..Default::default() };
        match presolve(&p, &opts) {
            PresolveOutcome::Infeasible => {}
            PresolveOutcome::Reduced(r) => assert!(r.solve(SolveEngine::Dlx).is_none()),
            PresolveOutcome::Solved(s, _) => panic!("unexpected solve: {s:?}"),
        }
        assert!(p.solve(SolveEngine::Dlx).is_none(), "oracle agrees");
    }

    #[test]
    fn lp_bound_threshold_is_selection_invariant() {
        // The LP bound is a pruning aid, never a correctness lever:
        // forcing a component to either side of
        // `PresolveOptions::LP_BOUND_SET_THRESHOLD` must yield the same
        // selection bit for bit. Build one odd-cycle-ish block (so the LP
        // relaxation is fractional and actually differs from the IP) and
        // solve it with the LP gate wide open and fully closed.
        let mut p = SetPartitionProblem::new(9);
        for i in 0..9usize {
            p.add_set(vec![i, (i + 1) % 9], 1.0 + 0.01 * i as f64);
            p.add_set(vec![i], 0.61 + 0.005 * i as f64);
        }
        let lp_on = PresolveOptions {
            lp_bound_min_sets: 0,
            lp_bound_max_sets: usize::MAX,
            ..Default::default()
        };
        let lp_off = PresolveOptions { lp_bound: false, ..Default::default() };
        assert!(p.sets.len() <= PresolveOptions::LP_BOUND_SET_THRESHOLD);
        let on = p.solve_presolved(SolveEngine::Dlx, &lp_on).unwrap();
        let off = p.solve_presolved(SolveEngine::Dlx, &lp_off).unwrap();
        let default = p.solve_presolved(SolveEngine::Dlx, &PresolveOptions::default()).unwrap();
        assert_eq!(on.selected, off.selected);
        assert_eq!(on.selected, default.selected);
        assert_eq!(on.cost.to_bits(), off.cost.to_bits());
        assert_eq!(on.cost.to_bits(), default.cost.to_bits());
        assert!(on.proven_optimal && off.proven_optimal);
        // Both thresholds stay coherent: the window is non-empty.
        const { assert!(PresolveOptions::LP_BOUND_SET_THRESHOLD < PresolveOptions::LP_BOUND_SET_CEILING) }
        let defaults = PresolveOptions::default();
        assert_eq!(defaults.lp_bound_min_sets, PresolveOptions::LP_BOUND_SET_THRESHOLD + 1);
        assert_eq!(defaults.lp_bound_max_sets, PresolveOptions::LP_BOUND_SET_CEILING);
    }

    #[test]
    fn loose_max_bound_does_not_couple() {
        // max_sets ≥ residual element count can never bind, so plain
        // decomposition applies and no frontier ranges are computed.
        let mut p = problem(
            4,
            &[(&[0, 1], 1.0), (&[0], 0.7), (&[1], 0.7), (&[2, 3], 2.0), (&[2], 0.6), (&[3], 0.6)],
        );
        p.max_sets = Some(4);
        let opts = PresolveOptions { fix_mandatory: false, dominance: false, ..Default::default() };
        let r = reduced(&p, &opts);
        assert_eq!(r.components().len(), 2);
        assert!(!r.is_coupled());
        assert_eq!(r.stats().decomposition, DecompositionStatus::Decomposed);
        let s = r.solve(SolveEngine::Dlx).unwrap();
        let oracle = p.solve(SolveEngine::Dlx).unwrap();
        assert!((s.cost - oracle.cost).abs() < 1e-9);
    }

    #[test]
    fn fixing_adjusts_cardinality_bounds() {
        // {0,1} is mandatory; with max_sets = 1 nothing more fits, so the
        // remaining block {2,3} is uncoverable.
        let mut p = problem(4, &[(&[0, 1], 1.0), (&[2, 3], 1.0), (&[2], 0.4), (&[3], 0.4)]);
        p.max_sets = Some(1);
        assert!(
            matches!(presolve(&p, &PresolveOptions::default()), PresolveOutcome::Infeasible)
                || p.solve_presolved(SolveEngine::Dlx, &PresolveOptions::default()).is_none()
        );
        assert!(p.solve(SolveEngine::Dlx).is_none(), "oracle agrees");
    }

    #[test]
    fn greedy_warm_start_is_feasible_when_found() {
        let p = problem(3, &[(&[0, 1, 2], 2.0), (&[0], 1.0), (&[1], 1.0), (&[2], 1.0)]);
        let (rows, cost) = greedy_cover(&p).unwrap();
        let mut covered = [false; 3];
        for &r in &rows {
            for &m in &p.sets[r].0 {
                assert!(!covered[m]);
                covered[m] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
        assert!((cost - rows.iter().map(|&r| p.sets[r].1).sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    fn share_bound_is_admissible() {
        let p = problem(3, &[(&[0, 1], 1.0), (&[2], 0.5), (&[0], 0.8), (&[1], 0.9)]);
        let lb = share_bound(&p);
        let opt = p.solve(SolveEngine::Dlx).unwrap().cost;
        assert!(lb <= opt + 1e-12);
    }

    #[test]
    fn solve_presolved_matches_oracle_on_a_mixed_instance() {
        // Duplicates + a mandatory singleton + two components at once.
        let p = problem(
            5,
            &[
                (&[0, 1], 1.0),
                (&[0, 1], 2.0), // duplicate, more expensive
                (&[0], 0.8),
                (&[1], 0.8),
                (&[2], 0.3), // sole cover of 2 → fixed
                (&[3, 4], 1.1),
                (&[3], 0.5),
                (&[4], 0.5),
            ],
        );
        for engine in [SolveEngine::Dlx, SolveEngine::SimplexBnb] {
            let presolved = p.solve_presolved(engine, &PresolveOptions::default()).unwrap();
            let oracle = p.solve(engine).unwrap();
            assert!((presolved.cost - oracle.cost).abs() < 1e-9, "{engine:?}");
            assert!(presolved.proven_optimal);
            // Unique optimum here → identical selections too.
            assert_eq!(presolved.selected, oracle.selected, "{engine:?}");
        }
    }

    #[test]
    fn is_subset_merge_walk() {
        assert!(is_subset(&[], &[1, 2]));
        assert!(is_subset(&[2], &[1, 2, 3]));
        assert!(is_subset(&[1, 3], &[1, 2, 3]));
        assert!(!is_subset(&[0], &[1, 2]));
        assert!(!is_subset(&[1, 4], &[1, 2, 3]));
        assert!(!is_subset(&[1, 2], &[2]));
    }
}
