//! Linear/integer program model shared by the solver backends.

/// Sense of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
    /// `Σ aᵢxᵢ = b`
    Eq,
}

/// A sparse linear constraint `Σ aᵢ·x_{idx(i)}  sense  rhs`.
#[derive(Debug, Clone)]
pub struct LinearConstraint {
    /// `(variable index, coefficient)` pairs; indexes must be unique.
    pub terms: Vec<(usize, f64)>,
    /// Relation between the linear form and `rhs`.
    pub sense: Sense,
    /// Right-hand side.
    pub rhs: f64,
}

/// A minimization program over non-negative variables.
///
/// For [`crate::branch_bound`] all variables are additionally binary
/// (`xᵢ ∈ {0,1}`); for the plain LP relaxation they range over `[0, 1]`.
#[derive(Debug, Clone, Default)]
pub struct Model {
    costs: Vec<f64>,
    constraints: Vec<LinearConstraint>,
}

impl Model {
    /// An empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a variable with objective coefficient `cost`; returns its index.
    pub fn add_var(&mut self, cost: f64) -> usize {
        self.costs.push(cost);
        self.costs.len() - 1
    }

    /// Adds a constraint.
    pub fn add_constraint(&mut self, terms: Vec<(usize, f64)>, sense: Sense, rhs: f64) {
        debug_assert!(terms.iter().all(|&(i, _)| i < self.costs.len()), "term out of range");
        self.constraints.push(LinearConstraint { terms, sense, rhs });
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.costs.len()
    }

    /// Objective coefficients.
    pub fn costs(&self) -> &[f64] {
        &self.costs
    }

    /// The constraints.
    pub fn constraints(&self) -> &[LinearConstraint] {
        &self.constraints
    }

    /// Objective value of an assignment.
    pub fn objective(&self, x: &[f64]) -> f64 {
        self.costs.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Whether `x` satisfies every constraint within tolerance `eps`.
    pub fn is_feasible(&self, x: &[f64], eps: f64) -> bool {
        self.constraints.iter().all(|c| {
            let lhs: f64 = c.terms.iter().map(|&(i, a)| a * x[i]).sum();
            match c.sense {
                Sense::Le => lhs <= c.rhs + eps,
                Sense::Ge => lhs >= c.rhs - eps,
                Sense::Eq => (lhs - c.rhs).abs() <= eps,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_evaluate() {
        let mut m = Model::new();
        let x = m.add_var(1.0);
        let y = m.add_var(2.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Eq, 1.0);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.objective(&[1.0, 0.0]), 1.0);
        assert!(m.is_feasible(&[0.5, 0.5], 1e-9));
        assert!(!m.is_feasible(&[1.0, 0.5], 1e-9));
    }

    #[test]
    fn sense_checks() {
        let mut m = Model::new();
        let x = m.add_var(0.0);
        m.add_constraint(vec![(x, 2.0)], Sense::Le, 1.0);
        m.add_constraint(vec![(x, 1.0)], Sense::Ge, 0.2);
        assert!(m.is_feasible(&[0.4], 1e-9));
        assert!(!m.is_feasible(&[0.1], 1e-9));
        assert!(!m.is_feasible(&[0.6], 1e-9));
    }
}
