//! Sparse revised simplex over CSC columns with an LU/eta-file basis.
//!
//! The dense tableau in [`crate::simplex`] carries the whole `B⁻¹A` image
//! and rewrites it on every pivot — `O(rows × cols)` per iteration, which
//! is exactly the term that dominates large column-generation masters
//! (tens of rows, thousands of appended columns). The revised method keeps
//! the columns in their original sparse form and maintains only a
//! factorization of the current basis `B`:
//!
//! * **columns** live in a compressed sparse column store — a
//!   set-partitioning column touches just its member rows;
//! * the **basis** is held as a dense LU of some earlier basis `B₀`
//!   ([`gecco_linalg::LuFactors`], `P·B₀ = L·U`) plus a product-form *eta
//!   file*: after `k` pivots, `B_k = B₀·E₁·…·E_k` where `E_i` is the
//!   identity with one column replaced by the FTRAN image of the entering
//!   column;
//! * **pricing** solves `yᵀB = c_B` (BTRAN: eta transforms in reverse,
//!   then the LU transpose solve) and scans reduced costs against the
//!   *original* sparse columns; the **ratio test** needs one FTRAN of the
//!   entering column. A pivot costs `O(rows² + nnz)` instead of
//!   `O(rows × cols)`.
//!
//! Determinism discipline: the eta file is rebuilt into a fresh LU after a
//! **fixed count** of pivots (`REFACTOR_ETAS`) — never on a timer or an
//! error estimate — so a given column/basis history always factors, prices
//! and pivots identically. The anti-cycling rules are carried over verbatim
//! from the dense tableau (see [`crate::simplex`]): Dantzig's most-negative
//! entering rule while the solve makes primal progress, Bland's
//! smallest-index rule inside degenerate stalls, ratios snapped to exact
//! zero below `DEGENERATE_RATIO`, leaving ties broken by smallest basis
//! index, and a stall backstop that widens the entering tolerance tenfold
//! after `STALL_LIMIT` zero-progress pivots.
//!
//! Two entry points: `RevisedMaster` is the incremental restricted
//! master for [`crate::colgen`] — columns append between re-optimizations
//! and the previous optimal basis warm-starts the next solve — and
//! [`solve_lp_with_duals_revised`] is a generic two-phase solve used as a
//! differential mirror of [`crate::simplex::solve_lp_with_duals`].

use crate::model::{Model, Sense};
use crate::simplex::{LpDualResult, LpSolution};
use gecco_linalg::LuFactors;

const EPS: f64 = 1e-9;

/// Same role as [`crate::simplex`]'s constant: ratios below this snap to
/// exactly `0.0` so Bland's tie-break sees exact ties, not round-off noise.
const DEGENERATE_RATIO: f64 = 1e-9;

/// Zero-progress pivots tolerated before the entering tolerance widens.
const STALL_LIMIT: u32 = 1_000;

/// Eta-file length that triggers a refactorization. A fixed count keeps
/// the trigger deterministic (no clocks, no error estimates) and bounds
/// both FTRAN/BTRAN cost and drift: 64 etas over ≤ a few hundred rows is
/// well inside the regime where product-form updates stay accurate.
const REFACTOR_ETAS: usize = 64;

/// Pivots below this magnitude make a basis numerically singular.
const SINGULAR: f64 = 1e-11;

/// Compressed sparse column store with per-column objective costs.
#[derive(Debug, Clone, Default)]
struct ColumnStore {
    ptr: Vec<usize>,
    rows: Vec<usize>,
    vals: Vec<f64>,
    costs: Vec<f64>,
}

impl ColumnStore {
    fn new() -> ColumnStore {
        ColumnStore { ptr: vec![0], rows: Vec::new(), vals: Vec::new(), costs: Vec::new() }
    }

    fn len(&self) -> usize {
        self.costs.len()
    }

    /// Appends a column; `entries` are `(row, coefficient)` pairs with
    /// distinct rows. Returns the new column's index.
    fn push(&mut self, cost: f64, entries: &[(usize, f64)]) -> usize {
        for &(r, v) in entries {
            self.rows.push(r);
            self.vals.push(v);
        }
        self.ptr.push(self.rows.len());
        self.costs.push(cost);
        self.costs.len() - 1
    }

    #[inline]
    fn col(&self, j: usize) -> (&[usize], &[f64]) {
        let (lo, hi) = (self.ptr[j], self.ptr[j + 1]);
        (&self.rows[lo..hi], &self.vals[lo..hi])
    }
}

/// One product-form update: the basis gained column `d` (the FTRAN image
/// of the entering column) in position `row`.
#[derive(Debug, Clone)]
struct Eta {
    row: usize,
    d: Vec<f64>,
}

/// `B = B₀·E₁·…·E_k` with `B₀` held as LU factors.
#[derive(Debug)]
struct Factorization {
    lu: LuFactors,
    etas: Vec<Eta>,
}

impl Factorization {
    /// Factorizes the basis columns `basis` of `cols` (an `m×m` system).
    /// `None` when the basis is singular to working precision.
    fn build(m: usize, cols: &ColumnStore, basis: &[usize]) -> Option<Factorization> {
        debug_assert_eq!(basis.len(), m);
        let mut dense = vec![0.0; m * m];
        for (r, &j) in basis.iter().enumerate() {
            let (rows, vals) = cols.col(j);
            for (&i, &v) in rows.iter().zip(vals) {
                dense[i * m + r] = v;
            }
        }
        let lu = LuFactors::factorize(m, dense, SINGULAR)?;
        Some(Factorization { lu, etas: Vec::new() })
    }

    /// FTRAN: solves `B·x = b` in place (`x` enters as `b`).
    fn ftran(&self, x: &mut [f64]) {
        self.lu.solve(x);
        for eta in &self.etas {
            let p = eta.row;
            let t = x[p] / eta.d[p];
            if t != 0.0 {
                for (i, &d) in eta.d.iter().enumerate() {
                    if i != p {
                        x[i] -= d * t;
                    }
                }
            }
            x[p] = t;
        }
    }

    /// BTRAN: solves `yᵀ·B = c` in place (`y` enters as `c`). Eta
    /// transforms apply in reverse order, then the LU transpose solve.
    fn btran(&self, y: &mut [f64]) {
        for eta in self.etas.iter().rev() {
            let p = eta.row;
            let mut s = y[p];
            for (i, &d) in eta.d.iter().enumerate() {
                if i != p {
                    s -= y[i] * d;
                }
            }
            y[p] = s / eta.d[p];
        }
        self.lu.solve_transpose(y);
    }
}

/// Outcome of one [`RevisedSimplex::optimize`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Optimal,
    Unbounded,
    /// A refactorization failed — the maintained basis drifted singular.
    /// Callers recover by restarting from a known-good basis.
    Singular,
}

/// The revised-simplex engine: sparse columns, a factored basis, and the
/// dense tableau's pivoting discipline.
struct RevisedSimplex {
    m: usize,
    cols: ColumnStore,
    rhs: Vec<f64>,
    /// `basis[r]` is the column basic in row `r`.
    basis: Vec<usize>,
    in_basis: Vec<bool>,
    /// Basic variable values by row (`B⁻¹·rhs`, maintained per pivot).
    x_b: Vec<f64>,
    factor: Option<Factorization>,
    /// Pivots performed across all `optimize` calls.
    pivots: usize,
}

impl RevisedSimplex {
    fn new(rhs: Vec<f64>) -> RevisedSimplex {
        let m = rhs.len();
        RevisedSimplex {
            m,
            cols: ColumnStore::new(),
            rhs,
            basis: Vec::new(),
            in_basis: Vec::new(),
            x_b: vec![0.0; m],
            factor: None,
            pivots: 0,
        }
    }

    fn add_column(&mut self, cost: f64, entries: &[(usize, f64)]) -> usize {
        self.in_basis.push(false);
        self.cols.push(cost, entries)
    }

    /// Installs `basis` (factorize + recompute `x_b`). `false` on a
    /// singular basis.
    fn set_basis(&mut self, basis: Vec<usize>) -> bool {
        for flag in self.in_basis.iter_mut() {
            *flag = false;
        }
        for &j in &basis {
            self.in_basis[j] = true;
        }
        self.basis = basis;
        self.refactor()
    }

    /// Rebuilds the LU from the current basis columns and recomputes
    /// `x_b` from scratch, clearing accumulated eta-file drift.
    fn refactor(&mut self) -> bool {
        match Factorization::build(self.m, &self.cols, &self.basis) {
            Some(factor) => {
                self.x_b.copy_from_slice(&self.rhs);
                factor.ftran(&mut self.x_b);
                self.factor = Some(factor);
                true
            }
            None => {
                self.factor = None;
                false
            }
        }
    }

    /// Runs simplex iterations for the objective `costs` (one entry per
    /// column), considering only columns below `allow` for entry. The
    /// anti-cycling discipline is the dense tableau's, verbatim; see the
    /// module docs.
    fn optimize(&mut self, costs: &[f64], allow: usize) -> Status {
        debug_assert_eq!(costs.len(), self.cols.len());
        let m = self.m;
        let allow = allow.min(self.cols.len());
        let mut tolerance = EPS;
        let mut stalled = 0u32;
        loop {
            let Some(factor) = &self.factor else { return Status::Singular };
            // BTRAN: y = B⁻ᵀ·c_B, then price the sparse columns.
            let mut y = vec![0.0; m];
            for (r, &j) in self.basis.iter().enumerate() {
                y[r] = costs[j];
            }
            factor.btran(&mut y);
            let bland = stalled > 0;
            let mut entering = None;
            let mut most_negative = -tolerance;
            for (j, &cost) in costs.iter().enumerate().take(allow) {
                if self.in_basis[j] {
                    continue;
                }
                let (rows, vals) = self.cols.col(j);
                let mut reduced = cost;
                for (&i, &v) in rows.iter().zip(vals) {
                    reduced -= y[i] * v;
                }
                if reduced < most_negative {
                    entering = Some(j);
                    if bland {
                        break; // Bland: smallest index
                    }
                    most_negative = reduced; // Dantzig: most negative
                }
            }
            let Some(pc) = entering else { return Status::Optimal };
            // FTRAN the entering column into the current basis frame.
            let mut d = vec![0.0; m];
            let (rows, vals) = self.cols.col(pc);
            for (&i, &v) in rows.iter().zip(vals) {
                d[i] = v;
            }
            factor.ftran(&mut d);
            // Ratio test with the dense tableau's degenerate-tie handling.
            let mut pivot_row: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for (r, &coeff) in d.iter().enumerate() {
                if coeff > EPS {
                    let ratio = self.x_b[r] / coeff;
                    let ratio = if ratio < DEGENERATE_RATIO { 0.0 } else { ratio };
                    let better = match pivot_row {
                        None => true,
                        Some(pr) => {
                            ratio < best_ratio
                                || (ratio == best_ratio && self.basis[r] < self.basis[pr])
                        }
                    };
                    if better {
                        best_ratio = ratio;
                        pivot_row = Some(r);
                    }
                }
            }
            let Some(pr) = pivot_row else { return Status::Unbounded };
            self.apply_pivot(pr, pc, d);
            if best_ratio > 0.0 {
                stalled = 0;
            } else {
                stalled += 1;
                if stalled >= STALL_LIMIT {
                    stalled = 0;
                    tolerance *= 10.0;
                }
            }
            if self.factor.as_ref().is_some_and(|f| f.etas.len() >= REFACTOR_ETAS)
                && !self.refactor()
            {
                return Status::Singular;
            }
        }
    }

    /// Performs the basis exchange at `(pr, pc)` where `d` is the FTRAN
    /// image of column `pc`: updates `x_b`, the basis maps, and the eta
    /// file.
    fn apply_pivot(&mut self, pr: usize, pc: usize, d: Vec<f64>) {
        debug_assert!(d[pr].abs() > EPS, "pivot on ~0 element");
        let t = self.x_b[pr] / d[pr];
        for (r, &dr) in d.iter().enumerate() {
            if r != pr {
                self.x_b[r] -= dr * t;
            }
        }
        self.x_b[pr] = t;
        self.in_basis[self.basis[pr]] = false;
        self.in_basis[pc] = true;
        self.basis[pr] = pc;
        if let Some(factor) = &mut self.factor {
            factor.etas.push(Eta { row: pr, d });
        }
        self.pivots += 1;
    }

    /// Value of column `j` in the current basic solution, clamped at zero
    /// like the dense tableau's read-off.
    fn value(&self, j: usize) -> f64 {
        if !self.in_basis[j] {
            return 0.0;
        }
        for (r, &b) in self.basis.iter().enumerate() {
            if b == j {
                return self.x_b[r].max(0.0);
            }
        }
        0.0
    }

    /// Duals of the current basis under `costs`: `y = B⁻ᵀ·c_B`.
    fn duals(&self, costs: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.m];
        for (r, &j) in self.basis.iter().enumerate() {
            y[r] = costs[j];
        }
        if let Some(factor) = &self.factor {
            factor.btran(&mut y);
        }
        y
    }
}

/// One master re-optimization's results, in the dense route's shapes: the
/// duals are ordered element rows first, then the cardinality rows.
#[derive(Debug, Clone)]
pub(crate) struct MasterLp {
    pub duals: Vec<f64>,
    pub objective: f64,
    /// Total artificial mass in the optimum (`> 0` means the restricted
    /// pool cannot yet form a fractional cover).
    pub art_usage: f64,
    /// Simplex pivots this solve took.
    pub pivots: usize,
}

/// The incremental restricted master for column generation: the
/// set-partitioning LP of [`crate::colgen`] (exactly-one rows, optional
/// cardinality rows, one big-M artificial per element) held live across
/// pricing rounds. [`Self::append_column`] adds priced columns without
/// touching the basis — new columns enter nonbasic at zero, so the
/// previous optimal basis stays primal-feasible and [`Self::solve`]
/// re-optimizes from it (warm start) instead of rebuilding anything.
pub(crate) struct RevisedMaster {
    simplex: RevisedSimplex,
    num_elements: usize,
    /// Simplex column index per artificial (element order).
    art_cols: Vec<usize>,
    /// Simplex column index per pool column (append order).
    structural: Vec<usize>,
    /// The always-feasible bootstrap basis (artificials + cardinality
    /// slack/surplus) — the cold-start and numeric-recovery point.
    initial_basis: Vec<usize>,
}

impl RevisedMaster {
    /// Builds the empty master. Caller guarantees `num_elements > 0` and
    /// `min_sets ≤ num_elements` (the colgen driver's early-outs).
    pub(crate) fn new(
        num_elements: usize,
        min_sets: Option<usize>,
        max_sets: Option<usize>,
    ) -> RevisedMaster {
        let n = num_elements;
        let mut rhs: Vec<f64> = vec![1.0; n];
        let max_row = max_sets.map(|max| {
            rhs.push(max as f64);
            rhs.len() - 1
        });
        let min_row = min_sets.map(|min| {
            rhs.push(min as f64);
            rhs.len() - 1
        });
        let mut simplex = RevisedSimplex::new(rhs);
        // Artificials mirror the dense master: the element's cover row and
        // the minimum row, never the maximum row. Costs are set per solve
        // (big-M tracks the pool's cost scale).
        let art_cols: Vec<usize> = (0..n)
            .map(|e| {
                let mut entries = vec![(e, 1.0)];
                if let Some(r) = min_row {
                    entries.push((r, 1.0));
                }
                simplex.add_column(0.0, &entries)
            })
            .collect();
        let mut initial_basis = art_cols.clone();
        if let Some(r) = max_row {
            initial_basis.push(simplex.add_column(0.0, &[(r, 1.0)]));
        }
        if let Some(r) = min_row {
            initial_basis.push(simplex.add_column(0.0, &[(r, -1.0)]));
        }
        let ok = simplex.set_basis(initial_basis.clone());
        debug_assert!(ok, "bootstrap basis is triangular, never singular");
        RevisedMaster { simplex, num_elements, art_cols, structural: Vec::new(), initial_basis }
    }

    /// Appends a pool column (`members` are dense element ids, sorted and
    /// distinct). The column joins nonbasic at zero — the current basis,
    /// and with it the warm start, is untouched.
    pub(crate) fn append_column(&mut self, members: &[usize], cost: f64) {
        let mut entries: Vec<(usize, f64)> = members.iter().map(|&e| (e, 1.0)).collect();
        // Cardinality rows: every structural column counts once in each.
        for r in self.num_elements..self.simplex.m {
            entries.push((r, 1.0));
        }
        let col = self.simplex.add_column(cost, &entries);
        self.structural.push(col);
    }

    /// Lowers the cost of pool column `idx` (a cheaper duplicate arrived).
    pub(crate) fn update_cost(&mut self, idx: usize, cost: f64) {
        let col = self.structural[idx];
        self.simplex.cols.costs[col] = cost;
    }

    /// Re-optimizes from the current basis. `None` only on numeric
    /// failure that even a cold restart cannot clear, or on unboundedness
    /// — both unreachable for well-formed masters (the caller falls back
    /// to the dense route, keeping the run exact either way).
    pub(crate) fn solve(&mut self) -> Option<MasterLp> {
        // Big-M mirrors the dense master_model: recomputed from the
        // current pool every solve so appended columns can never out-scale
        // the artificials.
        let max_cost =
            self.structural.iter().map(|&j| self.simplex.cols.costs[j].abs()).fold(1.0, f64::max);
        let big_m = 10.0 * max_cost * (self.num_elements as f64 + 1.0);
        for &j in &self.art_cols {
            self.simplex.cols.costs[j] = big_m;
        }
        let costs = self.simplex.cols.costs.clone();
        let before = self.simplex.pivots;
        let mut status = self.simplex.optimize(&costs, usize::MAX);
        if status == Status::Singular {
            // The maintained basis drifted singular: cold-restart from the
            // bootstrap basis, which is triangular and always factors.
            if self.simplex.set_basis(self.initial_basis.clone()) {
                status = self.simplex.optimize(&costs, usize::MAX);
            }
        }
        if status != Status::Optimal {
            return None;
        }
        let duals = self.simplex.duals(&costs);
        // Objective and artificial usage in the dense model's variable
        // order (pool columns, then artificials), so the float sums match
        // the oracle's shapes.
        let mut objective = 0.0;
        for &j in &self.structural {
            objective += costs[j] * self.simplex.value(j);
        }
        let mut art_usage = 0.0;
        for &j in &self.art_cols {
            let v = self.simplex.value(j);
            objective += costs[j] * v;
            art_usage += v;
        }
        Some(MasterLp { duals, objective, art_usage, pivots: self.simplex.pivots - before })
    }
}

/// Two-phase revised-simplex solve of `model`, mirroring
/// [`crate::simplex::solve_lp_with_duals`]: same normalization (negative
/// RHS rows flip), same phase structure (artificials minimized first, then
/// driven out of the basis, then barred), same dual read-off orientation.
/// The dense tableau stays the oracle; this entry point exists so the two
/// engines can be differential-tested against each other on arbitrary LPs,
/// not just set-partitioning masters.
pub fn solve_lp_with_duals_revised(model: &Model) -> LpDualResult {
    let m = model.constraints().len();
    let n = model.num_vars();
    let mut rhs = Vec::with_capacity(m);
    let mut row_flip = vec![false; m];
    let mut senses = Vec::with_capacity(m);
    for (r, con) in model.constraints().iter().enumerate() {
        let mut b = con.rhs;
        if b < 0.0 {
            row_flip[r] = true;
            b = -b;
        }
        rhs.push(b);
        let sense = match (con.sense, row_flip[r]) {
            (Sense::Le, false) | (Sense::Ge, true) => Sense::Le,
            (Sense::Ge, false) | (Sense::Le, true) => Sense::Ge,
            (Sense::Eq, _) => Sense::Eq,
        };
        senses.push(sense);
    }
    let mut simplex = RevisedSimplex::new(rhs);
    // Structural columns 0..n, gathered row-wise then scattered per column.
    let mut entries: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for (r, con) in model.constraints().iter().enumerate() {
        for &(v, coeff) in &con.terms {
            entries[v].push((r, if row_flip[r] { -coeff } else { coeff }));
        }
    }
    for (v, e) in entries.iter().enumerate() {
        simplex.add_column(model.costs()[v], e);
    }
    // Slack/surplus columns, then one artificial per row (basic on Ge/Eq
    // rows, mirroring the dense tableau's construction).
    let mut basis = vec![usize::MAX; m];
    for (r, &sense) in senses.iter().enumerate() {
        match sense {
            Sense::Le => {
                basis[r] = simplex.add_column(0.0, &[(r, 1.0)]);
            }
            Sense::Ge => {
                simplex.add_column(0.0, &[(r, -1.0)]);
            }
            Sense::Eq => {}
        }
    }
    let art_start = simplex.cols.len();
    for (r, &sense) in senses.iter().enumerate() {
        let art = simplex.add_column(0.0, &[(r, 1.0)]);
        if !matches!(sense, Sense::Le) {
            basis[r] = art;
        }
    }
    let total = simplex.cols.len();
    if !simplex.set_basis(basis) {
        // The start basis is diagonal; this cannot happen.
        return LpDualResult::Infeasible;
    }
    // Phase 1: minimize artificial mass.
    let mut phase1 = vec![0.0; total];
    for slot in phase1.iter_mut().skip(art_start) {
        *slot = 1.0;
    }
    if simplex.optimize(&phase1, total) != Status::Optimal {
        // Bounded below by 0 and the start basis never drifts singular
        // before a first refactorization at our sizes.
        return LpDualResult::Infeasible;
    }
    let art_value: f64 = simplex
        .basis
        .iter()
        .enumerate()
        .filter(|&(_, &b)| b >= art_start)
        .map(|(r, _)| simplex.x_b[r])
        .sum();
    if art_value > 1e-7 {
        return LpDualResult::Infeasible;
    }
    // Drive degenerate artificials out: row r of B⁻¹A is eᵣᵀB⁻¹ (one
    // BTRAN of a unit vector) dotted with each original column.
    for r in 0..m {
        if simplex.basis[r] < art_start {
            continue;
        }
        let mut row = vec![0.0; m];
        row[r] = 1.0;
        if let Some(factor) = &simplex.factor {
            factor.btran(&mut row);
        }
        let pc = (0..art_start).find(|&j| {
            if simplex.in_basis[j] {
                return false;
            }
            let (rows, vals) = simplex.cols.col(j);
            let dot: f64 = rows.iter().zip(vals).map(|(&i, &v)| row[i] * v).sum();
            dot.abs() > EPS
        });
        if let Some(pc) = pc {
            let mut d = vec![0.0; m];
            let (rows, vals) = simplex.cols.col(pc);
            for (&i, &v) in rows.iter().zip(vals) {
                d[i] = v;
            }
            if let Some(factor) = &simplex.factor {
                factor.ftran(&mut d);
            }
            simplex.apply_pivot(r, pc, d);
        }
        // A zero row means the constraint was redundant; the artificial
        // stays basic at zero, which the phase-2 bar tolerates.
    }
    // Phase 2: the true objective; artificials are barred from entering.
    let mut phase2 = vec![0.0; total];
    phase2[..n].copy_from_slice(model.costs());
    match simplex.optimize(&phase2, art_start) {
        Status::Optimal => {}
        Status::Unbounded => return LpDualResult::Unbounded,
        Status::Singular => return LpDualResult::Infeasible,
    }
    let mut values = vec![0.0; n];
    for (r, &j) in simplex.basis.iter().enumerate() {
        if j < n {
            values[j] = simplex.x_b[r].max(0.0);
        }
    }
    let objective = model.objective(&values);
    let duals: Vec<f64> = simplex
        .duals(&phase2)
        .into_iter()
        .zip(&row_flip)
        .map(|(y, &flip)| if flip { -y } else { y })
        .collect();
    LpDualResult::Optimal { solution: LpSolution { values, objective }, duals }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::solve_lp_with_duals;

    fn both(model: &Model) -> (LpDualResult, LpDualResult) {
        (solve_lp_with_duals(model), solve_lp_with_duals_revised(model))
    }

    /// Asserts the two engines agree on feasibility and, when optimal, on
    /// the objective; checks the revised duals satisfy strong duality and
    /// dual feasibility against the model.
    fn assert_engines_agree(model: &Model) {
        let (dense, revised) = both(model);
        match (&dense, &revised) {
            (
                LpDualResult::Optimal { solution: ds, .. },
                LpDualResult::Optimal { solution: rs, duals },
            ) => {
                assert!(
                    (ds.objective - rs.objective).abs() < 1e-6,
                    "objectives differ: {} vs {}",
                    ds.objective,
                    rs.objective
                );
                assert!(model.is_feasible(&rs.values, 1e-6), "revised primal infeasible");
                let yb: f64 = model.constraints().iter().zip(duals).map(|(c, y)| c.rhs * y).sum();
                assert!((yb - rs.objective).abs() < 1e-6, "strong duality: {yb} vs {rs:?}");
                for j in 0..model.num_vars() {
                    let mut reduced = model.costs()[j];
                    for (con, y) in model.constraints().iter().zip(duals) {
                        for &(v, coeff) in &con.terms {
                            if v == j {
                                reduced -= y * coeff;
                            }
                        }
                    }
                    assert!(reduced > -1e-6, "column {j} prices negative: {reduced}");
                }
            }
            (LpDualResult::Infeasible, LpDualResult::Infeasible) => {}
            (LpDualResult::Unbounded, LpDualResult::Unbounded) => {}
            other => panic!("engines disagree: {other:?}"),
        }
    }

    #[test]
    fn matches_dense_on_basic_shapes() {
        // min x + 2y s.t. x + y = 1.
        let mut m = Model::new();
        let x = m.add_var(1.0);
        let y = m.add_var(2.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Eq, 1.0);
        assert_engines_agree(&m);

        // Mixed senses: min 2x + 3y s.t. x + y ≥ 4, x ≤ 3, y ≥ 1.
        let mut m = Model::new();
        let x = m.add_var(2.0);
        let y = m.add_var(3.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Ge, 4.0);
        m.add_constraint(vec![(x, 1.0)], Sense::Le, 3.0);
        m.add_constraint(vec![(y, 1.0)], Sense::Ge, 1.0);
        assert_engines_agree(&m);

        // Negative RHS normalization: -x ≤ -2.
        let mut m = Model::new();
        let x = m.add_var(1.0);
        m.add_constraint(vec![(x, -1.0)], Sense::Le, -2.0);
        assert_engines_agree(&m);
    }

    #[test]
    fn matches_dense_on_infeasible_and_unbounded() {
        let mut m = Model::new();
        let x = m.add_var(1.0);
        m.add_constraint(vec![(x, 1.0)], Sense::Ge, 2.0);
        m.add_constraint(vec![(x, 1.0)], Sense::Le, 1.0);
        assert_engines_agree(&m);

        let mut m = Model::new();
        let x = m.add_var(-1.0);
        m.add_constraint(vec![(x, 1.0)], Sense::Ge, 0.0);
        assert_engines_agree(&m);
    }

    #[test]
    fn fractional_set_partitioning_duals() {
        // The odd-cycle LP: optimum 1.5, unique duals (0.5, 0.5, 0.5).
        let mut m = Model::new();
        let s01 = m.add_var(1.0);
        let s12 = m.add_var(1.0);
        let s02 = m.add_var(1.0);
        m.add_constraint(vec![(s01, 1.0), (s02, 1.0)], Sense::Eq, 1.0);
        m.add_constraint(vec![(s01, 1.0), (s12, 1.0)], Sense::Eq, 1.0);
        m.add_constraint(vec![(s12, 1.0), (s02, 1.0)], Sense::Eq, 1.0);
        match solve_lp_with_duals_revised(&m) {
            LpDualResult::Optimal { solution, duals } => {
                assert!((solution.objective - 1.5).abs() < 1e-7, "{solution:?}");
                for y in duals {
                    assert!((y - 0.5).abs() < 1e-7, "{y}");
                }
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn degenerate_problem_terminates() {
        let mut m = Model::new();
        let x = m.add_var(1.0);
        let y = m.add_var(1.0);
        for _ in 0..4 {
            m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Ge, 1.0);
        }
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Le, 1.0);
        assert_engines_agree(&m);
    }

    #[test]
    fn warm_started_master_matches_cold_after_each_append() {
        // Append columns one by one; after each append the warm-started
        // re-optimization must match a cold solve over the same pool.
        let columns: &[(&[usize], f64)] = &[
            (&[0], 1.0),
            (&[1], 1.0),
            (&[2], 0.9),
            (&[0, 1], 1.4),
            (&[1, 2], 0.8),
            (&[0, 1, 2], 2.0),
        ];
        let mut warm = RevisedMaster::new(3, None, None);
        for upto in 1..=columns.len() {
            let (members, cost) = columns[upto - 1];
            warm.append_column(members, cost);
            let warm_lp = warm.solve().expect("master is always feasible");
            let mut cold = RevisedMaster::new(3, None, None);
            for &(m2, c2) in &columns[..upto] {
                cold.append_column(m2, c2);
            }
            let cold_lp = cold.solve().expect("master is always feasible");
            assert!(
                (warm_lp.objective - cold_lp.objective).abs() < 1e-9,
                "pool of {upto}: warm {} vs cold {}",
                warm_lp.objective,
                cold_lp.objective
            );
            assert!((warm_lp.art_usage - cold_lp.art_usage).abs() < 1e-9);
        }
    }

    #[test]
    fn master_with_cardinality_rows() {
        // min-3/max-3 forces the three singletons even though the pair is
        // cheaper per element.
        let mut master = RevisedMaster::new(3, Some(3), Some(3));
        master.append_column(&[0, 1], 0.5);
        master.append_column(&[0], 0.4);
        master.append_column(&[1], 0.4);
        master.append_column(&[2], 0.4);
        let lp = master.solve().expect("feasible");
        assert!(lp.art_usage < 1e-9, "{lp:?}");
        assert!((lp.objective - 1.2).abs() < 1e-7, "{lp:?}");
    }

    #[test]
    fn empty_master_runs_on_artificials() {
        let mut master = RevisedMaster::new(2, None, None);
        let lp = master.solve().expect("artificials keep it feasible");
        assert!(lp.art_usage > 1.0, "{lp:?}");
        // Pure big-M duals price any real column attractive.
        assert!(lp.duals[0] > 1.0 && lp.duals[1] > 1.0, "{lp:?}");
    }

    #[test]
    fn refactorization_preserves_the_trajectory() {
        // A master long enough to force several eta-file rebuilds: many
        // appends with interleaved re-solves must stay consistent with a
        // one-shot cold solve.
        let n = 12;
        let mut warm = RevisedMaster::new(n, None, None);
        let mut all: Vec<(Vec<usize>, f64)> = Vec::new();
        for a in 0..n {
            for b in a..n {
                let members: Vec<usize> = if a == b { vec![a] } else { vec![a, b] };
                let cost = 1.0 + ((a * 7 + b * 3) % 5) as f64 * 0.21;
                all.push((members, cost));
            }
        }
        let mut last_warm = None;
        for (members, cost) in &all {
            warm.append_column(members, *cost);
            last_warm = Some(warm.solve().expect("feasible").objective);
        }
        let mut cold = RevisedMaster::new(n, None, None);
        for (members, cost) in &all {
            cold.append_column(members, *cost);
        }
        let cold_obj = cold.solve().expect("feasible").objective;
        assert!(warm.simplex.pivots > REFACTOR_ETAS, "exercised a refactorization");
        let warm_obj = last_warm.unwrap();
        assert!((warm_obj - cold_obj).abs() < 1e-7, "warm {warm_obj} vs cold {cold_obj}");
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        /// A random master history: universe size, bounds, and a column
        /// sequence to append one at a time.
        #[allow(clippy::type_complexity)]
        fn master_spec(
        ) -> impl Strategy<Value = (usize, Option<usize>, Option<usize>, Vec<(Vec<usize>, f64)>)>
        {
            (2usize..7).prop_flat_map(|n| {
                let column = (proptest::collection::btree_set(0usize..n, 1..=n), 1usize..40)
                    .prop_map(|(members, c)| {
                        (members.into_iter().collect::<Vec<usize>>(), c as f64 * 0.25)
                    });
                (
                    Just(n),
                    proptest::option::of(1usize..4),
                    proptest::option::of(1usize..5),
                    proptest::collection::vec(column, 1..14),
                )
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// After every single append, the warm-started re-optimization
            /// equals a cold solve over the same pool — objective and
            /// artificial mass alike. This is the warm start's whole
            /// correctness claim, checked at every prefix.
            #[test]
            fn warm_restart_equals_cold_solve_at_every_prefix(spec in master_spec()) {
                let (n, min_sets, max_sets, columns) = spec;
                let mut warm = RevisedMaster::new(n, min_sets, max_sets);
                for upto in 1..=columns.len() {
                    let (members, cost) = &columns[upto - 1];
                    warm.append_column(members, *cost);
                    let warm_lp = warm.solve().expect("big-M master is always feasible");
                    let mut cold = RevisedMaster::new(n, min_sets, max_sets);
                    for (m2, c2) in &columns[..upto] {
                        cold.append_column(m2, *c2);
                    }
                    let cold_lp = cold.solve().expect("big-M master is always feasible");
                    prop_assert!(
                        (warm_lp.objective - cold_lp.objective).abs() < 1e-6,
                        "prefix {}: warm {} vs cold {}",
                        upto,
                        warm_lp.objective,
                        cold_lp.objective
                    );
                    prop_assert!(
                        (warm_lp.art_usage - cold_lp.art_usage).abs() < 1e-6,
                        "prefix {}: artificial mass diverged",
                        upto
                    );
                }
            }
        }
    }
}
