//! Two-phase dense primal simplex.
//!
//! Solves `min c'x` subject to `Ax {≤,≥,=} b`, `x ≥ 0`, via the textbook
//! tableau method: slack/surplus variables make all constraints equalities,
//! phase 1 drives artificial variables out of the basis, phase 2 optimizes
//! the true objective. Bland's rule guarantees termination on degenerate
//! instances. Dense storage is intentional — GECCO's LP relaxations have at
//! most a few hundred rows (one per event class), where dense pivoting is
//! both simple and fast.

use crate::model::{Model, Sense};

const EPS: f64 = 1e-9;

/// Ratios below this are treated as exactly degenerate (zero progress) in
/// the ratio test, so Bland's smallest-index tie-break sees exact ties
/// instead of round-off noise. See [`Tableau::optimize`].
const DEGENERATE_RATIO: f64 = 1e-9;

/// Outcome of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpResult {
    /// An optimal basic solution was found.
    Optimal(LpSolution),
    /// The constraint system has no solution with `x ≥ 0`.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
}

/// An optimal LP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Primal values for the model's variables.
    pub values: Vec<f64>,
    /// Objective value `c'x`.
    pub objective: f64,
}

/// Outcome of an LP solve that also reports the dual prices — the input to
/// column-generation pricing (see [`crate::colgen`]).
#[derive(Debug, Clone, PartialEq)]
pub enum LpDualResult {
    /// An optimal basic solution with one dual price per model constraint.
    Optimal {
        /// The primal solution.
        solution: LpSolution,
        /// `duals[r]` prices constraint `r` in its *original* orientation:
        /// at optimality every structural column `j` satisfies
        /// `c_j - Σ_r duals[r]·A[r][j] ≥ 0` and `Σ_r duals[r]·b_r` equals
        /// the objective (strong duality).
        duals: Vec<f64>,
    },
    /// The constraint system has no solution with `x ≥ 0`.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
}

/// Solves the LP relaxation of `model` (variables in `[0, ∞)`); callers that
/// need `x ≤ 1` add those rows explicitly (see [`solve_lp_box`]).
pub fn solve_lp(model: &Model) -> LpResult {
    Tableau::build(model).solve_in_place(model).0
}

/// Solves the LP relaxation and extracts the optimal dual prices from the
/// final tableau. Each row keeps an identity-start column (the slack of a
/// `≤` row, the artificial of a `≥`/`=` row) whose final-tableau entries
/// are `B⁻¹e_r`, so `y = c_B'B⁻¹` falls out of a single pass over the
/// basis — no separate dual solve. Artificial columns are barred from
/// re-entering the basis in phase 2 but their entries stay updated, which
/// is exactly what makes this read-off valid.
pub fn solve_lp_with_duals(model: &Model) -> LpDualResult {
    solve_lp_with_duals_counted(model).0
}

/// [`solve_lp_with_duals`] plus the pivot count of the solve — the colgen
/// driver aggregates it into [`crate::colgen::ColGenStats::master_pivots`]
/// so the dense and revised master routes report comparable work.
pub(crate) fn solve_lp_with_duals_counted(model: &Model) -> (LpDualResult, usize) {
    let mut tableau = Tableau::build(model);
    let result = tableau.solve_in_place(model);
    let pivots = tableau.pivots;
    let dual_result = match result {
        (LpResult::Optimal(solution), Some(duals)) => LpDualResult::Optimal { solution, duals },
        (LpResult::Optimal(_), None) => unreachable!("optimal solves always produce duals"),
        (LpResult::Infeasible, _) => LpDualResult::Infeasible,
        (LpResult::Unbounded, _) => LpDualResult::Unbounded,
    };
    (dual_result, pivots)
}

/// Solves the LP relaxation with box constraints `0 ≤ x ≤ 1` on every
/// variable, which is the relaxation of a binary program.
pub fn solve_lp_box(model: &Model) -> LpResult {
    let mut boxed = model.clone();
    for v in 0..model.num_vars() {
        boxed.add_constraint(vec![(v, 1.0)], Sense::Le, 1.0);
    }
    match solve_lp(&boxed) {
        LpResult::Optimal(mut s) => {
            s.values.truncate(model.num_vars());
            LpResult::Optimal(s)
        }
        other => other,
    }
}

struct Tableau {
    /// `rows × cols` coefficient matrix; the last column is the RHS.
    a: Vec<f64>,
    rows: usize,
    cols: usize,
    /// Basis: `basis[r]` is the column basic in row `r`.
    basis: Vec<usize>,
    /// Index of the first artificial column.
    art_start: usize,
    num_structural: usize,
    /// Per row: the column that started as `+e_r` (slack for `≤` rows,
    /// artificial for `≥`/`=` rows). In the final tableau it holds
    /// `B⁻¹e_r`, from which the duals are read off.
    row_id_col: Vec<usize>,
    /// Per row: whether the row was negated to normalize a negative RHS
    /// (its dual flips sign back).
    row_flip: Vec<bool>,
    /// Pivots performed across both phases.
    pivots: usize,
}

impl Tableau {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * self.cols + c]
    }

    #[inline]
    fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.a[r * self.cols + c]
    }

    fn build(model: &Model) -> Tableau {
        let m = model.constraints().len();
        let n = model.num_vars();
        // Count auxiliary columns.
        let mut num_slack = 0;
        for c in model.constraints() {
            if matches!(c.sense, Sense::Le | Sense::Ge) {
                num_slack += 1;
            }
        }
        // One artificial per row keeps the construction simple; phase 1
        // eliminates them all.
        let art_start = n + num_slack;
        let cols = art_start + m + 1; // + RHS
        let mut a = vec![0.0; m * cols];
        let mut basis = vec![0usize; m];
        let mut row_id_col = vec![0usize; m];
        let mut row_flip = vec![false; m];
        let mut slack_idx = n;
        for (r, con) in model.constraints().iter().enumerate() {
            let mut rhs = con.rhs;
            let mut flip = false;
            if rhs < 0.0 {
                flip = true;
                rhs = -rhs;
            }
            row_flip[r] = flip;
            for &(v, coeff) in &con.terms {
                a[r * cols + v] = if flip { -coeff } else { coeff };
            }
            let sense = match (con.sense, flip) {
                (Sense::Le, false) | (Sense::Ge, true) => Sense::Le,
                (Sense::Ge, false) | (Sense::Le, true) => Sense::Ge,
                (Sense::Eq, _) => Sense::Eq,
            };
            match sense {
                Sense::Le => {
                    a[r * cols + slack_idx] = 1.0;
                    basis[r] = slack_idx;
                    row_id_col[r] = slack_idx;
                    slack_idx += 1;
                }
                Sense::Ge => {
                    a[r * cols + slack_idx] = -1.0;
                    slack_idx += 1;
                    a[r * cols + art_start + r] = 1.0;
                    basis[r] = art_start + r;
                    row_id_col[r] = art_start + r;
                }
                Sense::Eq => {
                    a[r * cols + art_start + r] = 1.0;
                    basis[r] = art_start + r;
                    row_id_col[r] = art_start + r;
                }
            }
            a[r * cols + cols - 1] = rhs;
        }
        Tableau {
            a,
            rows: m,
            cols,
            basis,
            art_start,
            num_structural: n,
            row_id_col,
            row_flip,
            pivots: 0,
        }
    }

    fn pivot(&mut self, pr: usize, pc: usize) {
        self.pivots += 1;
        let piv = self.at(pr, pc);
        debug_assert!(piv.abs() > EPS, "pivot on ~0 element");
        for c in 0..self.cols {
            *self.at_mut(pr, c) /= piv;
        }
        for r in 0..self.rows {
            if r == pr {
                continue;
            }
            let factor = self.at(r, pc);
            if factor.abs() <= EPS {
                continue;
            }
            for c in 0..self.cols {
                let delta = factor * self.at(pr, c);
                *self.at_mut(r, c) -= delta;
            }
        }
        self.basis[pr] = pc;
    }

    /// Runs simplex iterations for the objective `obj` (length `cols-1`,
    /// reduced against the current basis inside). Returns `false` on
    /// unboundedness.
    ///
    /// Termination on degenerate instances needs two guards on top of the
    /// textbook method. (1) Bland's rule with *exact* tie detection:
    /// ratios within [`DEGENERATE_RATIO`] of zero are snapped to exactly
    /// `0.0`, because round-off residue (a basic value of `1e-15`) would
    /// otherwise make a degenerate tie look like a strict minimum and pick
    /// the leaving row by noise instead of by smallest basis index — the
    /// EPS-fuzzy tie-break this replaces cycled forever on real
    /// column-generation masters. (2) A stall backstop: if
    /// [`STALL_LIMIT`] consecutive pivots make no primal progress, the
    /// entering tolerance is widened tenfold, excluding the noise-level
    /// reduced costs that sustain any remaining cycle; each widening
    /// either admits progress or empties the entering candidates, so the
    /// loop provably terminates. In a sane run the backstop never fires
    /// (degenerate stretches are orders of magnitude shorter).
    fn optimize(&mut self, obj: &[f64], allow_cols: usize) -> bool {
        const STALL_LIMIT: u32 = 1_000;
        // Reduced cost row: z_j - c_j form, maintained implicitly by
        // recomputation per iteration with Bland's rule (cheap at our sizes).
        let mut tolerance = EPS;
        let mut stalled = 0u32;
        loop {
            // Compute simplex multipliers via basic costs: reduced cost of
            // column j is c_j - Σ_r c_B[r] * a[r][j]. While the solve makes
            // primal progress, Dantzig's most-negative rule picks the
            // entering column (fast in practice); inside a degenerate
            // stall, Bland's smallest-index rule takes over so the stretch
            // cannot cycle.
            let bland = stalled > 0;
            let basic_costs: Vec<f64> = self.basis.iter().map(|&b| obj[b]).collect();
            let mut entering = None;
            let mut most_negative = -tolerance;
            for (j, &cost_j) in obj.iter().enumerate().take(allow_cols) {
                if self.basis.contains(&j) {
                    continue;
                }
                let mut reduced = cost_j;
                for (r, &basic_cost) in basic_costs.iter().enumerate() {
                    reduced -= basic_cost * self.at(r, j);
                }
                if reduced < most_negative {
                    entering = Some(j);
                    if bland {
                        break; // Bland: smallest index
                    }
                    most_negative = reduced; // Dantzig: most negative
                }
            }
            let Some(pc) = entering else { return true };
            // Ratio test: Bland's rule — among the rows attaining the
            // minimum ratio, the basic variable with the smallest index
            // leaves.
            let mut pivot_row: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..self.rows {
                let coeff = self.at(r, pc);
                if coeff > EPS {
                    let ratio = self.at(r, self.cols - 1) / coeff;
                    let ratio = if ratio < DEGENERATE_RATIO { 0.0 } else { ratio };
                    let better = match pivot_row {
                        None => true,
                        Some(pr) => {
                            ratio < best_ratio
                                || (ratio == best_ratio && self.basis[r] < self.basis[pr])
                        }
                    };
                    if better {
                        best_ratio = ratio;
                        pivot_row = Some(r);
                    }
                }
            }
            let Some(pr) = pivot_row else { return false };
            self.pivot(pr, pc);
            if best_ratio > 0.0 {
                stalled = 0;
            } else {
                stalled += 1;
                if stalled >= STALL_LIMIT {
                    stalled = 0;
                    tolerance *= 10.0;
                }
            }
        }
    }

    fn solve_in_place(&mut self, model: &Model) -> (LpResult, Option<Vec<f64>>) {
        let total_cols = self.cols - 1;
        // Phase 1: minimize the sum of artificials.
        let mut phase1 = vec![0.0; total_cols];
        for slot in phase1.iter_mut().skip(self.art_start) {
            *slot = 1.0;
        }
        if !self.optimize(&phase1, total_cols) {
            // Phase-1 objective is bounded below by 0, so this cannot happen.
            return (LpResult::Infeasible, None);
        }
        let art_value: f64 = self
            .basis
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b >= self.art_start)
            .map(|(r, _)| self.at(r, self.cols - 1))
            .sum();
        if art_value > 1e-7 {
            return (LpResult::Infeasible, None);
        }
        // Drive any degenerate artificials out of the basis.
        for r in 0..self.rows {
            if self.basis[r] >= self.art_start {
                let pc = (0..self.art_start).find(|&j| self.at(r, j).abs() > EPS);
                if let Some(pc) = pc {
                    self.pivot(r, pc);
                }
                // If the whole row is zero the constraint was redundant.
            }
        }
        // Phase 2: original objective; artificial columns are barred.
        let mut phase2 = vec![0.0; total_cols];
        phase2[..self.num_structural].copy_from_slice(model.costs());
        if !self.optimize(&phase2, self.art_start) {
            return (LpResult::Unbounded, None);
        }
        let mut values = vec![0.0; self.num_structural];
        for r in 0..self.rows {
            if self.basis[r] < self.num_structural {
                values[self.basis[r]] = self.at(r, self.cols - 1).max(0.0);
            }
        }
        let objective = model.objective(&values);
        // Duals: y' = c_B'B⁻¹. Column `row_id_col[r]` started as `+e_r`,
        // so in the final tableau it holds `B⁻¹e_r` and `y_r` is its dot
        // product with the basic costs; rows that were negated to
        // normalize a negative RHS get their dual negated back.
        let duals: Vec<f64> = (0..self.rows)
            .map(|r| {
                let id = self.row_id_col[r];
                let mut y = 0.0;
                for (i, &b) in self.basis.iter().enumerate() {
                    let cost = phase2[b];
                    if cost != 0.0 {
                        y += cost * self.at(i, id);
                    }
                }
                if self.row_flip[r] {
                    -y
                } else {
                    y
                }
            })
            .collect();
        (LpResult::Optimal(LpSolution { values, objective }), Some(duals))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    fn optimal(result: LpResult) -> LpSolution {
        match result {
            LpResult::Optimal(s) => s,
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn simple_assignment() {
        // min x + 2y s.t. x + y = 1  →  x = 1.
        let mut m = Model::new();
        let x = m.add_var(1.0);
        let y = m.add_var(2.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Eq, 1.0);
        let s = optimal(solve_lp(&m));
        assert!((s.objective - 1.0).abs() < 1e-7);
        assert!((s.values[x] - 1.0).abs() < 1e-7);
        assert!(s.values[y].abs() < 1e-7);
    }

    #[test]
    fn ge_constraints() {
        // min 2x + 3y s.t. x + y >= 4, x >= 1, y >= 1 → x=3, y=1, obj 9.
        let mut m = Model::new();
        let x = m.add_var(2.0);
        let y = m.add_var(3.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Ge, 4.0);
        m.add_constraint(vec![(x, 1.0)], Sense::Ge, 1.0);
        m.add_constraint(vec![(y, 1.0)], Sense::Ge, 1.0);
        let s = optimal(solve_lp(&m));
        assert!((s.objective - 9.0).abs() < 1e-7, "{s:?}");
    }

    #[test]
    fn detects_infeasible() {
        // x >= 2 and x <= 1 is infeasible.
        let mut m = Model::new();
        let x = m.add_var(1.0);
        m.add_constraint(vec![(x, 1.0)], Sense::Ge, 2.0);
        m.add_constraint(vec![(x, 1.0)], Sense::Le, 1.0);
        assert_eq!(solve_lp(&m), LpResult::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        // min -x s.t. x >= 0 → unbounded.
        let mut m = Model::new();
        let x = m.add_var(-1.0);
        m.add_constraint(vec![(x, 1.0)], Sense::Ge, 0.0);
        assert_eq!(solve_lp(&m), LpResult::Unbounded);
    }

    #[test]
    fn box_relaxation_caps_at_one() {
        // min -x → with box constraints x = 1.
        let mut m = Model::new();
        let x = m.add_var(-1.0);
        m.add_constraint(vec![(x, 1.0)], Sense::Ge, 0.0);
        let s = optimal(solve_lp_box(&m));
        assert!((s.values[x] - 1.0).abs() < 1e-7);
        assert_eq!(s.values.len(), 1);
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // -x <= -2  ⇔  x >= 2.
        let mut m = Model::new();
        let x = m.add_var(1.0);
        m.add_constraint(vec![(x, -1.0)], Sense::Le, -2.0);
        let s = optimal(solve_lp(&m));
        assert!((s.values[x] - 2.0).abs() < 1e-7);
    }

    #[test]
    fn fractional_lp_solution() {
        // Set-partitioning relaxation with a fractional optimum:
        // classes {0,1,2}; sets {0,1}, {1,2}, {0,2}, each cost 1.
        // LP optimum picks each at 0.5 → objective 1.5.
        let mut m = Model::new();
        let s01 = m.add_var(1.0);
        let s12 = m.add_var(1.0);
        let s02 = m.add_var(1.0);
        m.add_constraint(vec![(s01, 1.0), (s02, 1.0)], Sense::Eq, 1.0);
        m.add_constraint(vec![(s01, 1.0), (s12, 1.0)], Sense::Eq, 1.0);
        m.add_constraint(vec![(s12, 1.0), (s02, 1.0)], Sense::Eq, 1.0);
        let s = optimal(solve_lp(&m));
        assert!((s.objective - 1.5).abs() < 1e-7, "{s:?}");
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple redundant constraints (degeneracy stresses Bland's rule).
        let mut m = Model::new();
        let x = m.add_var(1.0);
        let y = m.add_var(1.0);
        for _ in 0..4 {
            m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Ge, 1.0);
        }
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Le, 1.0);
        let s = optimal(solve_lp(&m));
        assert!((s.objective - 1.0).abs() < 1e-7);
    }

    #[test]
    fn redundant_equalities() {
        let mut m = Model::new();
        let x = m.add_var(1.0);
        m.add_constraint(vec![(x, 1.0)], Sense::Eq, 3.0);
        m.add_constraint(vec![(x, 2.0)], Sense::Eq, 6.0);
        let s = optimal(solve_lp(&m));
        assert!((s.values[x] - 3.0).abs() < 1e-7);
    }

    /// Checks the two dual optimality certificates: strong duality
    /// (`y'b = c'x*`) and dual feasibility (every structural column has
    /// nonnegative reduced cost `c_j - y'A_j`).
    fn assert_dual_certificates(m: &Model) -> Vec<f64> {
        let (solution, duals) = match solve_lp_with_duals(m) {
            LpDualResult::Optimal { solution, duals } => (solution, duals),
            other => panic!("expected optimal, got {other:?}"),
        };
        let yb: f64 = m.constraints().iter().zip(&duals).map(|(c, y)| c.rhs * y).sum();
        assert!((yb - solution.objective).abs() < 1e-7, "strong duality: {yb} vs {solution:?}");
        for j in 0..m.num_vars() {
            let mut reduced = m.costs()[j];
            for (con, y) in m.constraints().iter().zip(&duals) {
                for &(v, coeff) in &con.terms {
                    if v == j {
                        reduced -= y * coeff;
                    }
                }
            }
            assert!(reduced > -1e-7, "column {j} prices negative: {reduced}");
        }
        duals
    }

    #[test]
    fn duals_on_set_partitioning_relaxation() {
        // The fractional odd-cycle LP: unique duals y = (0.5, 0.5, 0.5).
        let mut m = Model::new();
        let s01 = m.add_var(1.0);
        let s12 = m.add_var(1.0);
        let s02 = m.add_var(1.0);
        m.add_constraint(vec![(s01, 1.0), (s02, 1.0)], Sense::Eq, 1.0);
        m.add_constraint(vec![(s01, 1.0), (s12, 1.0)], Sense::Eq, 1.0);
        m.add_constraint(vec![(s12, 1.0), (s02, 1.0)], Sense::Eq, 1.0);
        let duals = assert_dual_certificates(&m);
        for y in duals {
            assert!((y - 0.5).abs() < 1e-7, "{y}");
        }
    }

    #[test]
    fn duals_survive_rhs_normalization() {
        // -x ≤ -2 is flipped to x ≥ 2 internally; the reported dual must
        // price the *original* orientation: y·(-1) ≤ 1 and y·(-2) = 2.
        let mut m = Model::new();
        let x = m.add_var(1.0);
        m.add_constraint(vec![(x, -1.0)], Sense::Le, -2.0);
        let duals = assert_dual_certificates(&m);
        assert!((duals[0] + 1.0).abs() < 1e-7, "{duals:?}");
    }

    #[test]
    fn duals_on_mixed_senses() {
        // min 2x + 3y s.t. x + y ≥ 4, x ≤ 3, y ≥ 1 → x=3, y=1, obj 9.
        let mut m = Model::new();
        let x = m.add_var(2.0);
        let y = m.add_var(3.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Ge, 4.0);
        m.add_constraint(vec![(x, 1.0)], Sense::Le, 3.0);
        m.add_constraint(vec![(y, 1.0)], Sense::Ge, 1.0);
        assert_dual_certificates(&m);
    }

    #[test]
    fn duals_with_cardinality_rows() {
        // A set-partitioning master with a max-cardinality row, the exact
        // shape the column-generation master produces.
        let mut m = Model::new();
        let a = m.add_var(1.0);
        let b = m.add_var(0.6);
        let c = m.add_var(0.6);
        m.add_constraint(vec![(a, 1.0), (b, 1.0)], Sense::Eq, 1.0);
        m.add_constraint(vec![(a, 1.0), (c, 1.0)], Sense::Eq, 1.0);
        m.add_constraint(vec![(a, 1.0), (b, 1.0), (c, 1.0)], Sense::Le, 2.0);
        assert_dual_certificates(&m);
    }
}
