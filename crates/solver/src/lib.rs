//! Exact optimization substrate for GECCO's Step 2 (§V-C).
//!
//! The paper formulates optimal group selection as a mixed-integer program
//! and solves it with Gurobi. Gurobi is closed source, so this crate
//! provides exact replacements built from scratch:
//!
//! * [`simplex`] — a two-phase dense primal simplex for linear programs
//!   with Bland's anti-cycling rule;
//! * [`branch_bound`] — branch-and-bound over the LP relaxation for binary
//!   programs (a small but genuine MIP solver);
//! * [`dlx`] — an Algorithm-X / dancing-links exact-cover engine with
//!   cost-based branch-and-bound and cardinality side constraints, which is
//!   the natural specialized solver for the weighted set-partitioning
//!   structure of GECCO's selection problem;
//! * [`setpart`] — the set-partitioning problem type both engines accept,
//!   so results can be cross-validated against each other;
//! * [`mod@presolve`] — exact reductions (duplicate dedup, element dominance,
//!   mandatory fixing) and connected-component decomposition, plus greedy
//!   warm starts and LP/share lower bounds threaded into both engines;
//! * [`revised`] — a sparse revised simplex (CSC columns, LU + eta-file
//!   basis) whose incremental `revised::RevisedMaster` warm-starts the
//!   column-generation master in [`colgen`] instead of rebuilding the
//!   tableau every round.
//!
//! Both engines are exact: on feasible instances they return provably
//! optimal solutions (the test suite cross-validates them against each
//! other and against brute force). The presolved route
//! ([`SetPartitionProblem::solve_presolved`]) is cost-equivalent to the
//! direct solve, which stays available as the differential-testing oracle.

pub mod branch_bound;
pub mod colgen;
pub mod dlx;
pub mod model;
pub mod presolve;
pub mod revised;
pub mod setpart;
pub mod simplex;

pub use branch_bound::{solve_binary_program, BnbOptions, BnbResult};
pub use colgen::{
    solve_column_generation, ColGenOptions, ColGenSolution, ColGenStats, ColumnSource, DualPrices,
    EnumeratedColumnSource, MasterEngine, PricingRequest,
};
pub use dlx::{CoverOutcome, ExactCover, SolveParams};
pub use model::{LinearConstraint, Model, Sense};
pub use presolve::{
    presolve, Component, DecompositionStatus, FrontierOutcome, PresolveOptions, PresolveOutcome,
    PresolveStats, ReducedProblem,
};
pub use revised::solve_lp_with_duals_revised;
pub use setpart::{SetPartitionProblem, SetPartitionSolution, SolveEngine};
pub use simplex::{solve_lp, solve_lp_with_duals, LpDualResult, LpResult, LpSolution};
