//! Size and complexity reduction (§VI-A "Measures").
//!
//! Reported so that **larger is better** (more abstraction): the paper's
//! prose compares configurations that way (e.g. "BL_G achieves an average
//! size reduction of 0.47, whereas DFG_k yields 0.64").

use gecco_discovery::{discover, DiscoveryOptions, ModelComplexity};
use gecco_eventlog::EventLog;

/// Size reduction `1 − |G| / |C_L|`.
pub fn size_reduction(num_groups: usize, num_classes: usize) -> f64 {
    if num_classes == 0 {
        0.0
    } else {
        1.0 - num_groups as f64 / num_classes as f64
    }
}

/// Control-flow complexity reduction `1 − CFC(L') / CFC(L)`, measured on
/// models discovered from both logs with identical options.
pub fn complexity_reduction(
    original: &EventLog,
    abstracted: &EventLog,
    options: DiscoveryOptions,
) -> f64 {
    let before = ModelComplexity::of(&discover(original, options));
    let after = ModelComplexity::of(&discover(abstracted, options));
    before.cfc_reduction(&after)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecco_eventlog::LogBuilder;

    #[test]
    fn size_reduction_formula() {
        assert!((size_reduction(8, 24) - (1.0 - 8.0 / 24.0)).abs() < 1e-12);
        assert_eq!(size_reduction(5, 5), 0.0);
        assert_eq!(size_reduction(0, 0), 0.0);
    }

    #[test]
    fn complexity_reduction_on_simplified_log() {
        // Original: XOR between b/c; abstracted: plain sequence.
        let mut b = LogBuilder::new();
        b.trace("t1").event("a").unwrap().event("b").unwrap().event("d").unwrap().done();
        b.trace("t2").event("a").unwrap().event("c").unwrap().event("d").unwrap().done();
        let original = b.build();
        let mut b2 = LogBuilder::new();
        b2.trace("t1").event("a").unwrap().event("bc").unwrap().event("d").unwrap().done();
        b2.trace("t2").event("a").unwrap().event("bc").unwrap().event("d").unwrap().done();
        let abstracted = b2.build();
        let red = complexity_reduction(&original, &abstracted, DiscoveryOptions::default());
        assert!(red > 0.99, "all branching disappears: {red}");
    }

    #[test]
    fn no_change_no_reduction() {
        let mut b = LogBuilder::new();
        b.trace("t1").event("a").unwrap().event("b").unwrap().done();
        let log = b.build();
        let red = complexity_reduction(&log, &log, DiscoveryOptions::default());
        assert_eq!(red, 0.0);
    }
}
