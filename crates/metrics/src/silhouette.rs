//! Silhouette coefficient of a grouping.
//!
//! The standard cluster-quality measure \[31\]: for each class `c` in group
//! `g`, `a(c)` is its mean distance to the other members of `g` and `b(c)`
//! the minimum over other groups of the mean distance to their members;
//! `s(c) = (b − a)/max(a, b)`. Classes in singleton groups score 0 (the
//! usual convention). The coefficient is the mean over all classes;
//! negative values indicate groupings that are neither cohesive nor
//! separated (cf. `BL_Q`'s −0.20 in Table VII).

use crate::classdist::ClassDistances;
use gecco_eventlog::{ClassId, ClassSet};

/// Computes the silhouette coefficient of `groups` under `distances`.
/// Returns 0 for degenerate inputs (fewer than two groups or one class).
pub fn silhouette_coefficient(distances: &ClassDistances, groups: &[ClassSet]) -> f64 {
    if groups.len() < 2 {
        return 0.0;
    }
    let members: Vec<Vec<ClassId>> = groups.iter().map(|g| g.iter().collect()).collect();
    let mut total = 0.0;
    let mut count = 0usize;
    for (gi, group) in members.iter().enumerate() {
        for &c in group {
            count += 1;
            if group.len() == 1 {
                continue; // s = 0 by convention
            }
            let a: f64 =
                group.iter().filter(|&&o| o != c).map(|&o| distances.get(c, o)).sum::<f64>()
                    / (group.len() - 1) as f64;
            let b = members
                .iter()
                .enumerate()
                .filter(|(gj, other)| *gj != gi && !other.is_empty())
                .map(|(_, other)| {
                    other.iter().map(|&o| distances.get(c, o)).sum::<f64>() / other.len() as f64
                })
                .fold(f64::INFINITY, f64::min);
            if b.is_finite() {
                let denom = a.max(b);
                if denom > 0.0 {
                    total += (b - a) / denom;
                }
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecco_eventlog::{EventLog, LogBuilder};

    fn build(traces: &[&[&str]]) -> EventLog {
        let mut b = LogBuilder::new();
        for (i, t) in traces.iter().enumerate() {
            let mut tb = b.trace(&format!("t{i}"));
            for cls in *t {
                tb = tb.event(cls).unwrap();
            }
            tb.done();
        }
        b.build()
    }

    fn set(log: &EventLog, names: &[&str]) -> ClassSet {
        names.iter().map(|n| log.class_by_name(n).unwrap()).collect()
    }

    #[test]
    fn cohesive_grouping_scores_positive() {
        // a,b always adjacent; c,d always adjacent; blocks far apart.
        let t: &[&str] = &["a", "b", "x", "x", "x", "c", "d"];
        let log = build(&[t, t, t]);
        let d = ClassDistances::compute(&log);
        let good = [set(&log, &["a", "b"]), set(&log, &["c", "d"]), set(&log, &["x"])];
        let bad = [set(&log, &["a", "d"]), set(&log, &["c", "b"]), set(&log, &["x"])];
        let s_good = silhouette_coefficient(&d, &good);
        let s_bad = silhouette_coefficient(&d, &bad);
        assert!(s_good > 0.0, "cohesive grouping should be positive: {s_good}");
        assert!(s_bad < 0.0, "scattered grouping should be negative: {s_bad}");
        assert!(s_good > s_bad);
    }

    #[test]
    fn all_singletons_score_zero() {
        let log = build(&[&["a", "b", "c"]]);
        let d = ClassDistances::compute(&log);
        let groups = [set(&log, &["a"]), set(&log, &["b"]), set(&log, &["c"])];
        assert_eq!(silhouette_coefficient(&d, &groups), 0.0);
    }

    #[test]
    fn single_group_degenerate() {
        let log = build(&[&["a", "b"]]);
        let d = ClassDistances::compute(&log);
        assert_eq!(silhouette_coefficient(&d, &[set(&log, &["a", "b"])]), 0.0);
    }

    #[test]
    fn bounded_in_minus_one_one() {
        let t: &[&str] = &["a", "b", "c", "d", "e", "f"];
        let log = build(&[t, t]);
        let d = ClassDistances::compute(&log);
        let groups = [set(&log, &["a", "f"]), set(&log, &["b", "c"]), set(&log, &["d", "e"])];
        let s = silhouette_coefficient(&d, &groups);
        assert!((-1.0..=1.0).contains(&s));
    }
}
