//! Evaluation measures of §VI-A.
//!
//! * [`reduction`] — size reduction (`1 − |G|/|C_L|`) and control-flow
//!   complexity reduction via the [`gecco_discovery`] substrate;
//! * [`classdist`] — the pairwise event-class distance of \[32\]
//!   (average positional distance à la Fuzzy Miner proximity);
//! * [`silhouette`] — the silhouette coefficient \[31\] of a grouping under
//!   that distance, quantifying intra-group cohesion vs. inter-group
//!   separation.

pub mod classdist;
pub mod reduction;
pub mod silhouette;

pub use classdist::ClassDistances;
pub use reduction::{complexity_reduction, size_reduction};
pub use silhouette::silhouette_coefficient;
