//! Pairwise event-class distances.
//!
//! Following the proximity notion of Günther & van der Aalst's Fuzzy
//! Miner \[32\], the distance between two event classes is their *average
//! positional distance*: for every trace where both occur, each occurrence
//! of one class is matched to the nearest occurrence of the other, and the
//! absolute index differences are averaged (symmetrically). Classes that
//! never co-occur get the log's average trace length as a conservative
//! "far" default.

use gecco_eventlog::{ClassId, EventLog};

/// Precomputed symmetric distance matrix over the event classes of a log.
#[derive(Debug, Clone)]
pub struct ClassDistances {
    n: usize,
    dist: Vec<f64>,
}

impl ClassDistances {
    /// Computes all pairwise distances for `log`.
    pub fn compute(log: &EventLog) -> ClassDistances {
        let n = log.num_classes();
        let mut sum = vec![0.0f64; n * n];
        let mut cnt = vec![0u64; n * n];
        // Positions per class, reused per trace.
        let mut positions: Vec<Vec<u32>> = vec![Vec::new(); n];
        for trace in log.traces() {
            for p in &mut positions {
                p.clear();
            }
            for (i, e) in trace.events().iter().enumerate() {
                positions[e.class().index()].push(i as u32);
            }
            for a in 0..n {
                if positions[a].is_empty() {
                    continue;
                }
                for b in (a + 1)..n {
                    if positions[b].is_empty() {
                        continue;
                    }
                    // Mean nearest-occurrence distance, symmetrized.
                    let d_ab = mean_nearest(&positions[a], &positions[b]);
                    let d_ba = mean_nearest(&positions[b], &positions[a]);
                    let d = (d_ab + d_ba) / 2.0;
                    sum[a * n + b] += d;
                    cnt[a * n + b] += 1;
                }
            }
        }
        let total_events: usize = log.num_events();
        let avg_len = if log.traces().is_empty() {
            1.0
        } else {
            total_events as f64 / log.traces().len() as f64
        };
        let mut dist = vec![0.0f64; n * n];
        for a in 0..n {
            for b in (a + 1)..n {
                let d = if cnt[a * n + b] > 0 {
                    sum[a * n + b] / cnt[a * n + b] as f64
                } else {
                    avg_len.max(1.0)
                };
                dist[a * n + b] = d;
                dist[b * n + a] = d;
            }
        }
        ClassDistances { n, dist }
    }

    /// The distance between two classes (0 for identical classes).
    #[inline]
    pub fn get(&self, a: ClassId, b: ClassId) -> f64 {
        self.dist[a.index() * self.n + b.index()]
    }

    /// Number of classes covered.
    pub fn num_classes(&self) -> usize {
        self.n
    }
}

/// For each position in `from`, the distance to the nearest position in
/// `to`, averaged. Both slices are ascending.
fn mean_nearest(from: &[u32], to: &[u32]) -> f64 {
    let mut total = 0.0;
    for &p in from {
        // Binary search for the nearest element of `to`.
        let idx = to.partition_point(|&t| t < p);
        let mut best = u32::MAX;
        if idx < to.len() {
            best = best.min(to[idx] - p);
        }
        if idx > 0 {
            best = best.min(p - to[idx - 1]);
        }
        total += best as f64;
    }
    total / from.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecco_eventlog::LogBuilder;

    fn build(traces: &[&[&str]]) -> EventLog {
        let mut b = LogBuilder::new();
        for (i, t) in traces.iter().enumerate() {
            let mut tb = b.trace(&format!("t{i}"));
            for cls in *t {
                tb = tb.event(cls).unwrap();
            }
            tb.done();
        }
        b.build()
    }

    #[test]
    fn adjacent_classes_are_close() {
        let log = build(&[&["a", "b", "c", "d"]]);
        let d = ClassDistances::compute(&log);
        let a = log.class_by_name("a").unwrap();
        let b = log.class_by_name("b").unwrap();
        let dd = log.class_by_name("d").unwrap();
        assert_eq!(d.get(a, b), 1.0);
        assert_eq!(d.get(a, dd), 3.0);
        assert!(d.get(a, b) < d.get(a, dd));
        assert_eq!(d.get(a, b), d.get(b, a), "symmetric");
    }

    #[test]
    fn repeated_occurrences_use_nearest() {
        // a at 0 and 4; b at 1: a→b nearest distances are 1 and 3 → 2;
        // b→a nearest is 1 → symmetrized 1.5.
        let log = build(&[&["a", "b", "x", "y", "a"]]);
        let d = ClassDistances::compute(&log);
        let a = log.class_by_name("a").unwrap();
        let b = log.class_by_name("b").unwrap();
        assert!((d.get(a, b) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn never_co_occurring_classes_are_far() {
        let log = build(&[&["a", "b"], &["c", "d"]]);
        let d = ClassDistances::compute(&log);
        let a = log.class_by_name("a").unwrap();
        let c = log.class_by_name("c").unwrap();
        let b = log.class_by_name("b").unwrap();
        assert_eq!(d.get(a, c), 2.0, "avg trace length default");
        assert!(d.get(a, b) < d.get(a, c));
    }

    #[test]
    fn averaged_across_traces() {
        let log = build(&[&["a", "b"], &["a", "x", "b"]]);
        let d = ClassDistances::compute(&log);
        let a = log.class_by_name("a").unwrap();
        let b = log.class_by_name("b").unwrap();
        assert!((d.get(a, b) - 1.5).abs() < 1e-12, "(1 + 2) / 2");
    }
}
